// Package logic provides a structurally-hashed boolean circuit builder
// (an and-inverter-graph style representation) together with Tseitin
// translation to CNF for the sat package.
//
// The equivalence checker and the model checker both build their trace
// semantics as circuits here: atomic design/assertion expressions are
// bit-blasted into Node values, temporal operators combine them, and a
// single CNF emission hands the question to the SAT solver.
package logic

import (
	"fmt"

	"fveval/internal/sat"
)

// Node is a reference to a circuit node. The zero Node is the constant
// false; its complement is the constant true. Internally a node is an
// index with a complement bit, mirroring the sat.Lit encoding.
type Node int32

// Constants.
const (
	False Node = 0
	True  Node = 1
)

// IsConst reports whether n is one of the two constants.
func (n Node) IsConst() bool { return n&^1 == 0 }

func (n Node) index() int32 { return int32(n) >> 1 }
func (n Node) compl() bool  { return n&1 == 1 }

// Not returns the complement of n.
func (n Node) Not() Node { return n ^ 1 }

type gate struct {
	a, b Node // two-input AND gate; inputs may be complemented
}

// Builder constructs circuits. Nodes are value types referencing the
// builder's node table; a Node from one builder must not be used with
// another.
type Builder struct {
	gates    []gate          // index 0 unused (reserved for constants)
	hash     map[gate]Node   // structural hashing
	inputs   []Node          // free input nodes in creation order
	names    map[Node]string // debug names of inputs
	isVar    []bool          // per-index: true if free input
	hashHits int64           // And calls answered from the hash table
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	b := &Builder{
		hash:  make(map[gate]Node),
		names: make(map[Node]string),
	}
	b.gates = append(b.gates, gate{}) // index 0: constants
	b.isVar = append(b.isVar, false)
	return b
}

// NumNodes returns the number of allocated nodes (gates + inputs),
// excluding constants.
func (b *Builder) NumNodes() int { return len(b.gates) - 1 }

// HashHits returns the number of And constructions answered from the
// structural-hash table instead of allocating a new gate — the
// circuit-level reuse measure for incremental clients that keep one
// builder alive across a ramp of bounds.
func (b *Builder) HashHits() int64 { return b.hashHits }

// Input allocates a fresh free input node with a debug name.
func (b *Builder) Input(name string) Node {
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{})
	b.isVar = append(b.isVar, true)
	n := Node(idx << 1)
	b.inputs = append(b.inputs, n)
	b.names[n] = name
	return n
}

// Inputs returns the inputs in creation order.
func (b *Builder) Inputs() []Node { return b.inputs }

// Name returns the debug name of an input node.
func (b *Builder) Name(n Node) string { return b.names[n&^1] }

// And returns the conjunction of x and y with constant folding and
// structural hashing.
func (b *Builder) And(x, y Node) Node {
	// constant folding
	switch {
	case x == False || y == False:
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	case x == y.Not():
		return False
	}
	// canonical order for hashing
	if x > y {
		x, y = y, x
	}
	g := gate{x, y}
	if n, ok := b.hash[g]; ok {
		b.hashHits++
		return n
	}
	idx := int32(len(b.gates))
	b.gates = append(b.gates, g)
	b.isVar = append(b.isVar, false)
	n := Node(idx << 1)
	b.hash[g] = n
	return n
}

// Or returns the disjunction of x and y.
func (b *Builder) Or(x, y Node) Node { return b.And(x.Not(), y.Not()).Not() }

// Xor returns x XOR y.
func (b *Builder) Xor(x, y Node) Node {
	// (x AND !y) OR (!x AND y)
	return b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
}

// Xnor returns x XNOR y (equivalence).
func (b *Builder) Xnor(x, y Node) Node { return b.Xor(x, y).Not() }

// Implies returns x -> y.
func (b *Builder) Implies(x, y Node) Node { return b.Or(x.Not(), y) }

// Mux returns sel ? t : f.
func (b *Builder) Mux(sel, t, f Node) Node {
	if t == f {
		return t
	}
	return b.Or(b.And(sel, t), b.And(sel.Not(), f))
}

// AndAll folds And over all nodes (True for empty input).
func (b *Builder) AndAll(ns ...Node) Node {
	acc := True
	for _, n := range ns {
		acc = b.And(acc, n)
	}
	return acc
}

// OrAll folds Or over all nodes (False for empty input).
func (b *Builder) OrAll(ns ...Node) Node {
	acc := False
	for _, n := range ns {
		acc = b.Or(acc, n)
	}
	return acc
}

// Eval computes the value of node n under the assignment env, which
// maps input nodes (non-complemented) to values. Missing inputs default
// to false. Results are memoized in the provided cache (may be nil).
func (b *Builder) Eval(n Node, env map[Node]bool, cache map[int32]bool) bool {
	if cache == nil {
		cache = make(map[int32]bool)
	}
	v := b.evalIdx(n.index(), env, cache)
	if n.compl() {
		return !v
	}
	return v
}

func (b *Builder) evalIdx(idx int32, env map[Node]bool, cache map[int32]bool) bool {
	if idx == 0 {
		return false
	}
	if v, ok := cache[idx]; ok {
		return v
	}
	var v bool
	if b.isVar[idx] {
		v = env[Node(idx<<1)]
	} else {
		g := b.gates[idx]
		av := b.evalIdx(g.a.index(), env, cache)
		if g.a.compl() {
			av = !av
		}
		if !av {
			v = false
		} else {
			bv := b.evalIdx(g.b.index(), env, cache)
			if g.b.compl() {
				bv = !bv
			}
			v = bv
		}
	}
	cache[idx] = v
	return v
}

// CNF incrementally Tseitin-encodes circuit nodes into a sat.Solver.
// Emission is monotone: each Lit/Assert call encodes only gates not
// yet seen (tracked per node, with the high-water node mark exposed
// via HighWater), so one growing Builder+Solver pair can serve many
// queries — the builder keeps hashing new gates, and every emission
// pays only for the newly built cone.
type CNF struct {
	b         *Builder
	solver    *sat.Solver
	varOf     map[int32]int // node index -> sat var
	highWater int32         // largest node index encoded so far
}

// NewCNF creates a CNF emitter targeting the given solver.
func NewCNF(b *Builder, s *sat.Solver) *CNF {
	return &CNF{b: b, solver: s, varOf: map[int32]int{}}
}

// Encoded returns the number of circuit nodes already emitted as CNF.
func (c *CNF) Encoded() int { return len(c.varOf) }

// HighWater returns the largest node index encoded so far: nodes at or
// below the mark may already be in the solver, nodes above it are
// guaranteed fresh work for the next emission.
func (c *CNF) HighWater() int32 { return c.highWater }

// Solver returns the underlying solver.
func (c *CNF) Solver() *sat.Solver { return c.solver }

// Lit returns the sat literal equivalent to node n, emitting Tseitin
// clauses for any gates not yet encoded. Constants are encoded via a
// dedicated always-true variable.
func (c *CNF) Lit(n Node) sat.Lit {
	idx := n.index()
	v, ok := c.varOf[idx]
	if !ok {
		v = c.encode(idx)
	}
	return sat.NewLit(v, n.compl())
}

func (c *CNF) encode(idx int32) int {
	if v, ok := c.varOf[idx]; ok {
		return v
	}
	if idx == 0 {
		v := c.solver.NewVar()
		// constant-false variable
		c.solver.AddClause(sat.NewLit(v, true))
		c.setVar(0, v)
		return v
	}
	if c.b.isVar[idx] {
		v := c.solver.NewVar()
		c.setVar(idx, v)
		return v
	}
	// Iterative post-order encoding to avoid deep recursion on long
	// temporal chains.
	type frame struct {
		idx      int32
		expanded bool
	}
	stack := []frame{{idx, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, done := c.varOf[f.idx]; done {
			continue
		}
		if f.idx == 0 || c.b.isVar[f.idx] {
			c.encodeLeaf(f.idx)
			continue
		}
		g := c.b.gates[f.idx]
		ai, bi := g.a.index(), g.b.index()
		_, aDone := c.varOf[ai]
		_, bDone := c.varOf[bi]
		if f.expanded || (aDone && bDone) {
			if !aDone {
				c.encodeLeaf(ai)
			}
			if !bDone {
				c.encodeLeaf(bi)
			}
			c.emitAnd(f.idx, g)
			continue
		}
		stack = append(stack, frame{f.idx, true})
		if !aDone {
			stack = append(stack, frame{ai, false})
		}
		if !bDone {
			stack = append(stack, frame{bi, false})
		}
	}
	return c.varOf[idx]
}

// setVar records the sat variable for a node and advances the
// high-water emission mark.
func (c *CNF) setVar(idx int32, v int) {
	c.varOf[idx] = v
	if idx > c.highWater {
		c.highWater = idx
	}
}

func (c *CNF) encodeLeaf(idx int32) {
	if _, ok := c.varOf[idx]; ok {
		return
	}
	v := c.solver.NewVar()
	c.setVar(idx, v)
	if idx == 0 {
		c.solver.AddClause(sat.NewLit(v, true))
	}
}

func (c *CNF) emitAnd(idx int32, g gate) {
	if _, ok := c.varOf[idx]; ok {
		return
	}
	v := c.solver.NewVar()
	c.setVar(idx, v)
	out := sat.NewLit(v, false)
	a := c.litOf(g.a)
	b := c.litOf(g.b)
	// v <-> a AND b
	c.solver.AddClause(out.Not(), a)
	c.solver.AddClause(out.Not(), b)
	c.solver.AddClause(out, a.Not(), b.Not())
}

func (c *CNF) litOf(n Node) sat.Lit {
	v, ok := c.varOf[n.index()]
	if !ok {
		panic(fmt.Sprintf("logic: child node %d not yet encoded", n.index()))
	}
	return sat.NewLit(v, n.compl())
}

// Assert adds a unit clause requiring node n to be true.
func (c *CNF) Assert(n Node) { c.solver.AddClause(c.Lit(n)) }

// AssertIf adds the clause (cond -> n): n must hold whenever cond
// does. With cond a fresh free input this gates a constraint behind an
// activation literal — pass cond's literal as a Solve assumption to
// enable the constraint for one call, or Retire it to drop the
// constraint permanently.
func (c *CNF) AssertIf(cond, n Node) {
	c.solver.AddClause(c.Lit(cond).Not(), c.Lit(n))
}

// Retire permanently forces an activation node false, disabling every
// constraint asserted under it. Learnt clauses mentioning the
// activation stay sound: they are implied by the clause set, which now
// simply includes the unit.
func (c *CNF) Retire(act Node) {
	c.solver.AddClause(c.Lit(act).Not())
}

// InputValue reads the value of an input node from a sat model.
func (c *CNF) InputValue(model []bool, n Node) bool {
	v, ok := c.varOf[n.index()]
	if !ok {
		return false // unconstrained input: any value works; pick false
	}
	val := model[v]
	if n.compl() {
		return !val
	}
	return val
}
