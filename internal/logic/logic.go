// Package logic provides a structurally-hashed boolean circuit builder
// (an and-inverter-graph style representation) together with Tseitin
// translation to CNF for the sat package.
//
// The equivalence checker and the model checker both build their trace
// semantics as circuits here: atomic design/assertion expressions are
// bit-blasted into Node values, temporal operators combine them, and a
// single CNF emission hands the question to the SAT solver.
package logic

import (
	"fmt"

	"fveval/internal/sat"
)

// Node is a reference to a circuit node. The zero Node is the constant
// false; its complement is the constant true. Internally a node is an
// index with a complement bit, mirroring the sat.Lit encoding.
type Node int32

// Constants.
const (
	False Node = 0
	True  Node = 1
)

// IsConst reports whether n is one of the two constants.
func (n Node) IsConst() bool { return n&^1 == 0 }

func (n Node) index() int32 { return int32(n) >> 1 }
func (n Node) compl() bool  { return n&1 == 1 }

// Not returns the complement of n.
func (n Node) Not() Node { return n ^ 1 }

// Compl reports whether n is in complemented form.
func (n Node) Compl() bool { return n.compl() }

type gate struct {
	a, b Node // two-input AND gate; inputs may be complemented
}

// Builder constructs circuits. Nodes are value types referencing the
// builder's node table; a Node from one builder must not be used with
// another.
//
// Structural hashing uses a flat open-addressing table (Fibonacci
// hashing, linear probing) instead of a Go map: And is the single
// hottest constructor in the formal backend, and the flat table cuts
// both the hash and the probe to a few instructions.
type Builder struct {
	gates    []gate   // index 0 unused (reserved for constants)
	htab     []int32  // open addressing: gate index + 1, 0 = empty
	hshift   uint     // 64 - log2(len(htab))
	hcount   int      // occupied slots
	inputs   []Node   // free input nodes in creation order
	names    []string // per-index debug names ("" for gates)
	isVar    []bool   // per-index: true if free input
	hashHits int64    // And calls answered from the hash table
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	b := &Builder{
		htab:   make([]int32, 1024),
		hshift: 64 - 10,
	}
	b.gates = append(b.gates, gate{}) // index 0: constants
	b.isVar = append(b.isVar, false)
	b.names = append(b.names, "")
	return b
}

// hashIdx returns the open-addressing start slot for a gate.
func (b *Builder) hashIdx(g gate) uint64 {
	key := uint64(uint32(g.a))<<32 | uint64(uint32(g.b))
	return (key * 0x9e3779b97f4a7c15) >> b.hshift
}

// hrehash doubles the table when load passes ~70%.
func (b *Builder) hrehash() {
	old := b.htab
	b.htab = make([]int32, 2*len(old))
	b.hshift--
	mask := uint64(len(b.htab) - 1)
	for _, e := range old {
		if e == 0 {
			continue
		}
		idx := b.hashIdx(b.gates[e-1])
		for b.htab[idx] != 0 {
			idx = (idx + 1) & mask
		}
		b.htab[idx] = e
	}
}

// NumNodes returns the number of allocated nodes (gates + inputs),
// excluding constants.
func (b *Builder) NumNodes() int { return len(b.gates) - 1 }

// HashHits returns the number of And constructions answered from the
// structural-hash table instead of allocating a new gate — the
// circuit-level reuse measure for incremental clients that keep one
// builder alive across a ramp of bounds.
func (b *Builder) HashHits() int64 { return b.hashHits }

// Input allocates a fresh free input node with a debug name.
func (b *Builder) Input(name string) Node {
	idx := int32(len(b.gates))
	b.gates = append(b.gates, gate{})
	b.isVar = append(b.isVar, true)
	b.names = append(b.names, name)
	n := Node(idx << 1)
	b.inputs = append(b.inputs, n)
	return n
}

// Inputs returns the inputs in creation order.
func (b *Builder) Inputs() []Node { return b.inputs }

// Name returns the debug name of an input node.
func (b *Builder) Name(n Node) string { return b.names[n.index()] }

// IsInput reports whether n references a free input node.
func (b *Builder) IsInput(n Node) bool { return b.isVar[n.index()] }

// And returns the conjunction of x and y with constant folding and
// structural hashing.
func (b *Builder) And(x, y Node) Node {
	// constant folding
	switch {
	case x == False || y == False:
		return False
	case x == True:
		return y
	case y == True:
		return x
	case x == y:
		return x
	case x == y.Not():
		return False
	}
	// canonical order for hashing
	if x > y {
		x, y = y, x
	}
	g := gate{x, y}
	mask := uint64(len(b.htab) - 1)
	slot := b.hashIdx(g)
	for {
		e := b.htab[slot]
		if e == 0 {
			break
		}
		if b.gates[e-1] == g {
			b.hashHits++
			return Node((e - 1) << 1)
		}
		slot = (slot + 1) & mask
	}
	idx := int32(len(b.gates))
	b.gates = append(b.gates, g)
	b.isVar = append(b.isVar, false)
	b.names = append(b.names, "")
	b.htab[slot] = idx + 1
	b.hcount++
	if 10*b.hcount >= 7*len(b.htab) {
		b.hrehash()
	}
	return Node(idx << 1)
}

// Or returns the disjunction of x and y.
func (b *Builder) Or(x, y Node) Node { return b.And(x.Not(), y.Not()).Not() }

// Xor returns x XOR y.
func (b *Builder) Xor(x, y Node) Node {
	// (x AND !y) OR (!x AND y)
	return b.Or(b.And(x, y.Not()), b.And(x.Not(), y))
}

// Xnor returns x XNOR y (equivalence).
func (b *Builder) Xnor(x, y Node) Node { return b.Xor(x, y).Not() }

// Implies returns x -> y.
func (b *Builder) Implies(x, y Node) Node { return b.Or(x.Not(), y) }

// Mux returns sel ? t : f.
func (b *Builder) Mux(sel, t, f Node) Node {
	if t == f {
		return t
	}
	return b.Or(b.And(sel, t), b.And(sel.Not(), f))
}

// AndAll folds And over all nodes (True for empty input). Spreading
// an existing slice (b.AndAll(v.Bits...)) passes it through without
// copying, so the fold allocates nothing.
func (b *Builder) AndAll(ns ...Node) Node { return b.AndSlice(ns) }

// AndSlice folds And over a node slice with no variadic boxing.
func (b *Builder) AndSlice(ns []Node) Node {
	acc := True
	for _, n := range ns {
		acc = b.And(acc, n)
	}
	return acc
}

// OrAll folds Or over all nodes (False for empty input); see AndAll
// for the allocation contract.
func (b *Builder) OrAll(ns ...Node) Node { return b.OrSlice(ns) }

// OrSlice folds Or over a node slice with no variadic boxing.
func (b *Builder) OrSlice(ns []Node) Node {
	acc := False
	for _, n := range ns {
		acc = b.Or(acc, n)
	}
	return acc
}

// Eval computes the value of node n under the assignment env, which
// maps input nodes (non-complemented) to values. Missing inputs default
// to false. It is a thin wrapper over the dense bit-parallel evaluator
// (see Sim): the first call runs one linear pass over the whole node
// table and, when a cache is supplied, spills every node's value into
// it, so repeated calls sharing a cache under one fixed env are O(1)
// lookups. Hot paths that decode many nodes should use Sim directly.
func (b *Builder) Eval(n Node, env map[Node]bool, cache map[int32]bool) bool {
	if v, ok := cache[n.index()]; ok {
		if n.compl() {
			return !v
		}
		return v
	}
	s := NewSim(b)
	for in, v := range env {
		if v {
			s.SetInput(in, ^uint64(0))
		}
	}
	s.Run()
	if cache != nil {
		for idx := range s.vals {
			cache[int32(idx)] = s.vals[idx]&1 == 1
		}
	}
	return s.Bit(n, 0)
}

// CNF incrementally Tseitin-encodes circuit nodes into a sat.Solver.
// Emission is monotone: each Lit/Assert call encodes only gates not
// yet seen (tracked per node, with the high-water node mark exposed
// via HighWater), so one growing Builder+Solver pair can serve many
// queries — the builder keeps hashing new gates, and every emission
// pays only for the newly built cone.
type CNF struct {
	b         *Builder
	solver    *sat.Solver
	varOf     []int32 // node index -> sat var (dense; -1 = not encoded)
	encoded   int     // nodes emitted so far
	highWater int32   // largest node index encoded so far
	stack     []cnfFrame
}

type cnfFrame struct {
	idx      int32
	expanded bool
}

// NewCNF creates a CNF emitter targeting the given solver.
func NewCNF(b *Builder, s *sat.Solver) *CNF {
	return &CNF{b: b, solver: s}
}

// Encoded returns the number of circuit nodes already emitted as CNF.
func (c *CNF) Encoded() int { return c.encoded }

// varFor looks up the sat var of a node index (-1 when not encoded).
// The table is dense over the builder's node indices and grows with
// it — emission-path lookups are array reads, not map probes.
func (c *CNF) varFor(idx int32) int32 {
	if int(idx) >= len(c.varOf) {
		return -1
	}
	return c.varOf[idx]
}

// HighWater returns the largest node index encoded so far: nodes at or
// below the mark may already be in the solver, nodes above it are
// guaranteed fresh work for the next emission.
func (c *CNF) HighWater() int32 { return c.highWater }

// Solver returns the underlying solver.
func (c *CNF) Solver() *sat.Solver { return c.solver }

// Lit returns the sat literal equivalent to node n, emitting Tseitin
// clauses for any gates not yet encoded. Constants are encoded via a
// dedicated always-true variable.
func (c *CNF) Lit(n Node) sat.Lit {
	idx := n.index()
	v := c.varFor(idx)
	if v < 0 {
		v = int32(c.encode(idx))
	}
	return sat.NewLit(int(v), n.compl())
}

func (c *CNF) encode(idx int32) int {
	if v := c.varFor(idx); v >= 0 {
		return int(v)
	}
	if idx == 0 || c.b.isVar[idx] {
		c.encodeLeaf(idx)
		return int(c.varOf[idx])
	}
	// Iterative post-order encoding to avoid deep recursion on long
	// temporal chains; the traversal stack is reused across calls.
	stack := append(c.stack[:0], cnfFrame{idx, false})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.varFor(f.idx) >= 0 {
			continue
		}
		if f.idx == 0 || c.b.isVar[f.idx] {
			c.encodeLeaf(f.idx)
			continue
		}
		g := c.b.gates[f.idx]
		ai, bi := g.a.index(), g.b.index()
		aDone := c.varFor(ai) >= 0
		bDone := c.varFor(bi) >= 0
		if f.expanded || (aDone && bDone) {
			if !aDone {
				c.encodeLeaf(ai)
			}
			if !bDone {
				c.encodeLeaf(bi)
			}
			c.emitAnd(f.idx, g)
			continue
		}
		stack = append(stack, cnfFrame{f.idx, true})
		if !aDone {
			stack = append(stack, cnfFrame{ai, false})
		}
		if !bDone {
			stack = append(stack, cnfFrame{bi, false})
		}
	}
	c.stack = stack[:0]
	return int(c.varOf[idx])
}

// setVar records the sat variable for a node and advances the
// high-water emission mark.
func (c *CNF) setVar(idx int32, v int) {
	if n := len(c.b.gates); len(c.varOf) < n {
		grown := make([]int32, n+n/2)
		copy(grown, c.varOf)
		for i := len(c.varOf); i < len(grown); i++ {
			grown[i] = -1
		}
		c.varOf = grown
	}
	c.varOf[idx] = int32(v)
	c.encoded++
	if idx > c.highWater {
		c.highWater = idx
	}
}

func (c *CNF) encodeLeaf(idx int32) {
	if c.varFor(idx) >= 0 {
		return
	}
	v := c.solver.NewVar()
	c.setVar(idx, v)
	if idx == 0 {
		c.solver.AddClause(sat.NewLit(v, true))
	}
}

func (c *CNF) emitAnd(idx int32, g gate) {
	if c.varFor(idx) >= 0 {
		return
	}
	v := c.solver.NewVar()
	c.setVar(idx, v)
	out := sat.NewLit(v, false)
	a := c.litOf(g.a)
	b := c.litOf(g.b)
	// v <-> a AND b
	c.solver.AddClause(out.Not(), a)
	c.solver.AddClause(out.Not(), b)
	c.solver.AddClause(out, a.Not(), b.Not())
}

func (c *CNF) litOf(n Node) sat.Lit {
	v := c.varFor(n.index())
	if v < 0 {
		panic(fmt.Sprintf("logic: child node %d not yet encoded", n.index()))
	}
	return sat.NewLit(int(v), n.compl())
}

// Assert adds a unit clause requiring node n to be true.
func (c *CNF) Assert(n Node) { c.solver.AddClause(c.Lit(n)) }

// AssertIf adds the clause (cond -> n): n must hold whenever cond
// does. With cond a fresh free input this gates a constraint behind an
// activation literal — pass cond's literal as a Solve assumption to
// enable the constraint for one call, or Retire it to drop the
// constraint permanently.
func (c *CNF) AssertIf(cond, n Node) {
	c.solver.AddClause(c.Lit(cond).Not(), c.Lit(n))
}

// Retire permanently forces an activation node false, disabling every
// constraint asserted under it. Learnt clauses mentioning the
// activation stay sound: they are implied by the clause set, which now
// simply includes the unit.
func (c *CNF) Retire(act Node) {
	c.solver.AddClause(c.Lit(act).Not())
}

// InputValue reads the value of an input node from a sat model.
func (c *CNF) InputValue(model []bool, n Node) bool {
	v := c.varFor(n.index())
	if v < 0 {
		return false // unconstrained input: any value works; pick false
	}
	val := model[v]
	if n.compl() {
		return !val
	}
	return val
}
