package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fveval/internal/sat"
)

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	cases := []struct {
		got, want Node
		name      string
	}{
		{b.And(False, x), False, "0&x"},
		{b.And(x, False), False, "x&0"},
		{b.And(True, x), x, "1&x"},
		{b.And(x, True), x, "x&1"},
		{b.And(x, x), x, "x&x"},
		{b.And(x, x.Not()), False, "x&!x"},
		{b.Or(x, True), True, "x|1"},
		{b.Or(x, x.Not()), True, "x|!x"},
		{b.Xor(x, x), False, "x^x"},
		{b.Xor(x, False), x, "x^0"},
		{b.Xor(x, True), x.Not(), "x^1"},
		{b.Mux(True, x, x.Not()), x, "mux1"},
		{b.Mux(False, x, x.Not()), x.Not(), "mux0"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestStructuralHashing(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	a1 := b.And(x, y)
	a2 := b.And(y, x)
	if a1 != a2 {
		t.Fatalf("commutative ANDs must hash to the same node")
	}
	n := b.NumNodes()
	b.And(x, y)
	if b.NumNodes() != n {
		t.Fatalf("repeated AND must not allocate")
	}
}

func TestEval(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	f := b.Or(b.And(x, y), b.And(x.Not(), z)) // mux(x, y, z)
	for mask := 0; mask < 8; mask++ {
		env := map[Node]bool{
			x: mask&1 != 0, y: mask&2 != 0, z: mask&4 != 0,
		}
		want := env[z]
		if env[x] {
			want = env[y]
		}
		if got := b.Eval(f, env, nil); got != want {
			t.Fatalf("mask %d: got %v want %v", mask, got, want)
		}
	}
}

func TestCNFAgreesWithEval(t *testing.T) {
	// Property: for random circuits, the CNF encoding is satisfiable with
	// output true exactly when some input assignment makes Eval true,
	// and returned models evaluate to true.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		nIn := 2 + rng.Intn(5)
		var ins []Node
		for i := 0; i < nIn; i++ {
			ins = append(ins, b.Input("i"))
		}
		pool := append([]Node(nil), ins...)
		for i := 0; i < 12; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			if rng.Intn(2) == 0 {
				x = x.Not()
			}
			var n Node
			switch rng.Intn(3) {
			case 0:
				n = b.And(x, y)
			case 1:
				n = b.Or(x, y)
			default:
				n = b.Xor(x, y)
			}
			pool = append(pool, n)
		}
		out := pool[len(pool)-1]

		// brute force
		anyTrue := false
		for mask := 0; mask < 1<<uint(nIn); mask++ {
			env := map[Node]bool{}
			for i, in := range ins {
				env[in] = mask&(1<<uint(i)) != 0
			}
			if b.Eval(out, env, nil) {
				anyTrue = true
				break
			}
		}

		s := sat.New()
		c := NewCNF(b, s)
		c.Assert(out)
		ok, model, err := s.SolveModel()
		if err != nil {
			return false
		}
		if ok != anyTrue {
			return false
		}
		if ok {
			env := map[Node]bool{}
			for _, in := range ins {
				env[in] = c.InputValue(model, in)
			}
			if !b.Eval(out, env, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCNFUnsat(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	s := sat.New()
	c := NewCNF(b, s)
	c.Assert(b.And(x, x.Not()))
	ok, _ := s.Solve()
	if ok {
		t.Fatalf("x AND !x must be UNSAT")
	}
}

func TestConstTrueAssertion(t *testing.T) {
	b := NewBuilder()
	s := sat.New()
	c := NewCNF(b, s)
	c.Assert(True)
	ok, _ := s.Solve()
	if !ok {
		t.Fatalf("asserting true must stay SAT")
	}
	c.Assert(False)
	ok, _ = s.Solve()
	if ok {
		t.Fatalf("asserting false must be UNSAT")
	}
}

func TestDeepChainEncoding(t *testing.T) {
	// A long AND chain must encode without recursion issues.
	b := NewBuilder()
	acc := True
	var ins []Node
	for i := 0; i < 5000; i++ {
		in := b.Input("x")
		ins = append(ins, in)
		acc = b.And(acc, in)
	}
	s := sat.New()
	c := NewCNF(b, s)
	c.Assert(acc)
	ok, model, err := s.SolveModel()
	if err != nil || !ok {
		t.Fatalf("chain must be SAT: %v %v", ok, err)
	}
	for _, in := range ins {
		if !c.InputValue(model, in) {
			t.Fatalf("all chain inputs must be true")
		}
	}
}

func TestAndAllOrAll(t *testing.T) {
	b := NewBuilder()
	if b.AndAll() != True {
		t.Fatalf("empty AndAll must be True")
	}
	if b.OrAll() != False {
		t.Fatalf("empty OrAll must be False")
	}
	x, y := b.Input("x"), b.Input("y")
	if b.AndAll(x, y) != b.And(x, y) {
		t.Fatalf("AndAll(x,y) != And(x,y)")
	}
	if b.OrAll(x, y) != b.Or(x, y) {
		t.Fatalf("OrAll(x,y) != Or(x,y)")
	}
}

// TestCNFIncrementalEmission pins the monotone-emission contract the
// incremental backend relies on: re-asserting an encoded cone emits
// nothing, and asserting a new gate over an old cone pays only for the
// new nodes, advancing the high-water mark.
func TestCNFIncrementalEmission(t *testing.T) {
	b := NewBuilder()
	s := sat.New()
	c := NewCNF(b, s)
	x, y := b.Input("x"), b.Input("y")
	n1 := b.And(x, y)
	c.Assert(n1)
	enc1, hw1, vars1 := c.Encoded(), c.HighWater(), s.NumVars()
	if enc1 == 0 || hw1 == 0 {
		t.Fatalf("first Assert must encode nodes: encoded=%d highwater=%d", enc1, hw1)
	}

	// Re-asserting the same cone is free.
	c.Assert(n1)
	if c.Encoded() != enc1 || c.HighWater() != hw1 || s.NumVars() != vars1 {
		t.Fatalf("re-assert emitted: encoded %d->%d, highwater %d->%d, vars %d->%d",
			enc1, c.Encoded(), hw1, c.HighWater(), vars1, s.NumVars())
	}

	// A new gate over the old cone pays only for the new nodes.
	preNodes := b.NumNodes()
	n2 := b.Or(n1, b.Input("z"))
	newNodes := b.NumNodes() - preNodes
	c.Assert(n2)
	if got := c.Encoded() - enc1; got != newNodes {
		t.Fatalf("incremental Assert encoded %d nodes, want exactly the %d new ones", got, newNodes)
	}
	if c.HighWater() <= hw1 {
		t.Fatalf("high-water mark must advance past %d, got %d", hw1, c.HighWater())
	}
	if got := s.NumVars() - vars1; got != newNodes {
		t.Fatalf("incremental Assert allocated %d sat vars, want %d", got, newNodes)
	}
}

// TestCNFActivationGating pins AssertIf/Retire: a gated constraint
// binds only under its activation assumption, and retiring the
// activation drops it permanently.
func TestCNFActivationGating(t *testing.T) {
	b := NewBuilder()
	s := sat.New()
	c := NewCNF(b, s)
	x := b.Input("x")
	act := b.Input("act")
	c.AssertIf(act, x.Not())
	c.Assert(x) // permanent: x is true

	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("ungated solve must be sat: ok=%v err=%v", ok, err)
	}
	if ok, err := s.Solve(c.Lit(act)); err != nil || ok {
		t.Fatalf("activated contradiction must be unsat: ok=%v err=%v", ok, err)
	}
	c.Retire(act)
	if ok, err := s.Solve(); err != nil || !ok {
		t.Fatalf("retired constraint must drop out: ok=%v err=%v", ok, err)
	}
	// Re-activating a retired literal is trivially unsat via the unit.
	if ok, err := s.Solve(c.Lit(act)); err != nil || ok {
		t.Fatalf("assuming a retired activation must be unsat: ok=%v err=%v", ok, err)
	}
	if core := s.Core(); len(core) != 1 || core[0] != c.Lit(act) {
		t.Fatalf("core of retired activation must be the assumption itself, got %v", core)
	}
}
