package human

import (
	"testing"

	"fveval/internal/equiv"
	"fveval/internal/ltl"
	"fveval/internal/rtl"
	"fveval/internal/sva"
)

func TestTable6Composition(t *testing.T) {
	want := map[string][2]int{
		"1R1W FIFO":       {4, 20},
		"Multi-Port FIFO": {1, 6},
		"Arbiter":         {4, 37},
		"FSM":             {2, 4},
		"Counter":         {1, 5},
		"RAM":             {1, 7},
	}
	got := Stats()
	for cat, w := range want {
		if got[cat] != w {
			t.Errorf("%s: got %v want %v", cat, got[cat], w)
		}
	}
	if TotalPairs() != 79 {
		t.Fatalf("total pairs %d, want 79", TotalPairs())
	}
	if len(Testbenches()) != 13 {
		t.Fatalf("testbenches %d, want 13", len(Testbenches()))
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, tb := range Testbenches() {
		for _, p := range tb.Pairs {
			if seen[p.ID] {
				t.Errorf("duplicate pair id %s", p.ID)
			}
			seen[p.ID] = true
		}
	}
}

func TestTestbenchesElaborate(t *testing.T) {
	for _, tb := range Testbenches() {
		f, err := rtl.Parse(tb.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", tb.Name, err)
			continue
		}
		if _, err := rtl.Elaborate(f, tb.Top, nil); err != nil {
			t.Errorf("%s: elaborate: %v", tb.Name, err)
		}
	}
}

// Sigs derives the equivalence-checking environment from a testbench.
func testbenchSigs(t *testing.T, tb *Testbench) *equiv.Sigs {
	t.Helper()
	f, err := rtl.Parse(tb.Source)
	if err != nil {
		t.Fatalf("%s: %v", tb.Name, err)
	}
	sys, err := rtl.Elaborate(f, tb.Top, nil)
	if err != nil {
		t.Fatalf("%s: %v", tb.Name, err)
	}
	w, c := sys.Sigs()
	return &equiv.Sigs{Widths: w, Consts: c}
}

func TestReferencesValidAndSelfEquivalent(t *testing.T) {
	for _, tb := range Testbenches() {
		sigs := testbenchSigs(t, tb)
		for _, p := range tb.Pairs {
			a, err := sva.ParseAssertion(p.Reference)
			if err != nil {
				t.Errorf("%s: parse reference: %v", p.ID, err)
				continue
			}
			if err := sva.Validate(a); err != nil {
				t.Errorf("%s: validate: %v", p.ID, err)
				continue
			}
			// every referenced signal resolves in the testbench env
			f, err := ltl.LowerAssertion(a)
			if err != nil {
				t.Errorf("%s: lower: %v", p.ID, err)
				continue
			}
			for _, name := range ltl.SignalNames(f) {
				_, isSig := sigs.Widths[name]
				_, isConst := sigs.Consts[name]
				if !isSig && !isConst {
					t.Errorf("%s: reference uses undeclared %q", p.ID, name)
				}
			}
			// reflexive equivalence sanity through the full checker
			res, err := equiv.Check(a, a, sigs, equiv.Options{})
			if err != nil {
				t.Errorf("%s: equivalence check: %v", p.ID, err)
				continue
			}
			if res.Verdict != equiv.Equivalent {
				t.Errorf("%s: reference not self-equivalent: %v", p.ID, res.Verdict)
			}
		}
	}
}

func TestNLMentionsReferencedSignals(t *testing.T) {
	// Specifications follow the house style of naming the signals to
	// use; sanity-check the hint text is present.
	for _, tb := range Testbenches() {
		for _, p := range tb.Pairs {
			if p.NL == "" {
				t.Errorf("%s: empty NL", p.ID)
			}
			if len(p.NL) < 20 {
				t.Errorf("%s: suspiciously short NL %q", p.ID, p.NL)
			}
		}
	}
}
