// Package human holds the NL2SVA-Human benchmark collateral: thirteen
// expert-style formal testbenches with seventy-nine natural-language
// specification / reference-assertion pairs, matching the composition
// of the paper's Table 6:
//
//	1R1W FIFO       4 variations   20 assertions
//	Multi-Port FIFO 1 variation     6 assertions
//	Arbiter         4 variations   37 assertions
//	FSM             2 variations    4 assertions
//	Counter         1 variation     5 assertions
//	RAM             1 variation     7 assertions
//
// The testbenches and the FIFO assertion set follow the sources
// printed in the paper's Appendix A; the remaining collateral is
// written in the same house style (tb_reset convention, modeling code
// with internal state, signal-usage hints inside the NL).
package human

// Pair is one test instance: an NL specification and the expert
// reference assertion.
type Pair struct {
	ID        string
	NL        string // specification text ("Create a SVA assertion that checks: " prefix added by the prompt builder)
	Reference string // reference SVA assertion source
}

// Testbench is one formal testbench with its assertion pairs.
type Testbench struct {
	Name     string
	Category string
	Top      string
	Source   string
	Pairs    []Pair
}

// Categories in Table 6 order.
var Categories = []string{"1R1W FIFO", "Multi-Port FIFO", "Arbiter", "FSM", "Counter", "RAM"}

// Testbenches returns the full benchmark (13 testbenches, 79 pairs).
func Testbenches() []*Testbench {
	var out []*Testbench
	out = append(out, fifoVariants()...)
	out = append(out, multiPortFIFO())
	out = append(out, arbiters()...)
	out = append(out, fsms()...)
	out = append(out, counter())
	out = append(out, ram())
	return out
}

// Stats returns per-category (variations, assertions) for Table 6.
func Stats() map[string][2]int {
	s := map[string][2]int{}
	for _, tb := range Testbenches() {
		v := s[tb.Category]
		v[0]++
		v[1] += len(tb.Pairs)
		s[tb.Category] = v
	}
	return s
}

// TotalPairs counts all assertion pairs.
func TotalPairs() int {
	n := 0
	for _, tb := range Testbenches() {
		n += len(tb.Pairs)
	}
	return n
}

// ---- 1R1W FIFO (4 variations, 5 pairs each) ---------------------------

func fifoSource(depth, width int, bypass bool) string {
	byp := ""
	bypDecl := ""
	if bypass {
		bypDecl = "wire bypass;\nassign bypass = wr_push && fifo_empty && rd_vld;\n"
		byp = "wire rd_bypass_ok;\nassign rd_bypass_ok = bypass && (wr_data == rd_data);\n"
	}
	return `
module fifo_1r1w_tb (
  clk,
  reset_,
  wr_vld,
  wr_data,
  wr_ready,
  rd_vld,
  rd_data,
  rd_ready
);
parameter FIFO_DEPTH = ` + itoa(depth) + `;
parameter DATA_WIDTH = ` + itoa(width) + `;
localparam FIFO_DEPTH_log2 = $clog2(FIFO_DEPTH);
input clk;
input reset_;
input wr_vld;
input [DATA_WIDTH-1:0] wr_data;
input wr_ready;
input rd_vld;
input [DATA_WIDTH-1:0] rd_data;
input rd_ready;
wire wr_push;
wire rd_pop;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
wire fifo_full;
assign wr_push = wr_vld && wr_ready;
assign rd_pop = rd_vld && rd_ready;
reg [DATA_WIDTH-1:0] fifo_array [FIFO_DEPTH-1:0];
reg [FIFO_DEPTH_log2-1:0] fifo_rd_ptr;
reg fifo_empty;
wire [DATA_WIDTH-1:0] fifo_out_data;
` + bypDecl + byp + `
always @(posedge clk) begin
  if (!reset_) fifo_array[0] <= 'd0;
  else if (wr_push) begin
    fifo_array[0] <= wr_data;
  end else fifo_array[0] <= fifo_array[0];
end
for (genvar i = 1; i < FIFO_DEPTH; i++ ) begin : loop_id
  always @(posedge clk) begin
    if (!reset_) fifo_array[i] <= 'd0;
    else if (wr_push) begin
      fifo_array[i] <= fifo_array[i-1];
    end else fifo_array[i] <= fifo_array[i];
  end
end
always @(posedge clk) begin
  if (!reset_) begin
    fifo_rd_ptr <= 'd0;
  end else if (wr_push && fifo_empty) begin
    fifo_rd_ptr <= 'd0;
  end else if (rd_pop && !fifo_empty && (fifo_rd_ptr == 'd0)) begin
    fifo_rd_ptr <= 'd0;
  end else begin
    fifo_rd_ptr <= fifo_rd_ptr + wr_push - rd_pop;
  end
  if (!reset_) begin
    fifo_empty <= 'd1;
  end else if (rd_pop && !fifo_empty && (fifo_rd_ptr == 'd0) && !wr_push) begin
    fifo_empty <= 'd1;
  end else if ((fifo_rd_ptr != 'd0) || wr_push && !rd_pop) begin
    fifo_empty <= 'd0;
  end
end
assign fifo_full = (fifo_rd_ptr == (FIFO_DEPTH - 1)) && !fifo_empty;
assign fifo_out_data = fifo_array[fifo_rd_ptr];
endmodule
`
}

// fifoPairs are the five specifications from the paper's Appendix A.1
// (Figure 11), reused across the FIFO variations as in the benchmark.
func fifoPairs(variant string) []Pair {
	return []Pair{
		{
			ID: "fifo_1r1w_" + variant + "_0",
			NL: "that the FIFO does not underflow, assuming no bypass. Use the signals 'rd_pop' and 'fifo_empty'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (fifo_empty && rd_pop) !== 1'b1
);`,
		},
		{
			ID: "fifo_1r1w_" + variant + "_1",
			NL: "that the FIFO does not overflow, assuming no bypass. Use the signals 'wr_push' and 'fifo_full'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (fifo_full && wr_push) !== 1'b1
);`,
		},
		{
			ID: "fifo_1r1w_" + variant + "_2",
			NL: "that the fifo output and read data are consistent, assuming no bypass. Use the signals 'rd_pop', 'rd_data', and 'fifo_out_data'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (rd_pop && (fifo_out_data != rd_data)) !== 1'b1
);`,
		},
		{
			ID: "fifo_1r1w_" + variant + "_3",
			NL: "that when response is pending, data is eventually popped from the FIFO. Use the signals 'rd_pop' and 'fifo_empty'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !fifo_empty |-> strong(##[0:$] rd_pop)
);`,
		},
		{
			ID: "fifo_1r1w_" + variant + "_4",
			NL: "that when there is a write push to the FIFO, data is eventually popped. Use the signals 'rd_pop' and 'wr_push'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  wr_push |-> strong(##[0:$] rd_pop)
);`,
		},
	}
}

func fifoVariants() []*Testbench {
	return []*Testbench{
		{
			Name: "fifo_1r1w", Category: "1R1W FIFO", Top: "fifo_1r1w_tb",
			Source: fifoSource(4, 1, false), Pairs: fifoPairs("basic"),
		},
		{
			Name: "fifo_1r1w_bypass", Category: "1R1W FIFO", Top: "fifo_1r1w_tb",
			Source: fifoSource(4, 1, true), Pairs: fifoPairs("bypass"),
		},
		{
			Name: "fifo_1r1w_deep", Category: "1R1W FIFO", Top: "fifo_1r1w_tb",
			Source: fifoSource(8, 1, false), Pairs: fifoPairs("deep"),
		},
		{
			Name: "fifo_1r1w_wide", Category: "1R1W FIFO", Top: "fifo_1r1w_tb",
			Source: fifoSource(4, 4, false), Pairs: fifoPairs("wide"),
		},
	}
}

// ---- Multi-Port FIFO (1 variation, 6 pairs) ----------------------------

func multiPortFIFO() *Testbench {
	src := `
module fifo_mp_tb (
  clk,
  reset_,
  wr0_vld,
  wr1_vld,
  wr0_data,
  wr1_data,
  rd_vld,
  rd_data,
  rd_ready
);
parameter DATA_WIDTH = 2;
input clk;
input reset_;
input wr0_vld;
input wr1_vld;
input [DATA_WIDTH-1:0] wr0_data;
input [DATA_WIDTH-1:0] wr1_data;
input rd_vld;
input [DATA_WIDTH-1:0] rd_data;
input rd_ready;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
wire rd_pop;
assign rd_pop = rd_vld && rd_ready;
wire [1:0] push_count;
assign push_count = wr0_vld + wr1_vld;
reg [3:0] occupancy;
wire fifo_empty;
wire fifo_full;
assign fifo_empty = (occupancy == 'd0);
assign fifo_full = (occupancy >= 'd8);
wire [1:0] pop_count;
assign pop_count = rd_pop ? 'd1 : 'd0;
always @(posedge clk) begin
  if (!reset_) occupancy <= 'd0;
  else occupancy <= occupancy + push_count - pop_count;
end
wire both_push;
assign both_push = wr0_vld && wr1_vld;
endmodule
`
	return &Testbench{
		Name: "fifo_multiport", Category: "Multi-Port FIFO", Top: "fifo_mp_tb",
		Source: src,
		Pairs: []Pair{
			{
				ID: "fifo_mp_0",
				NL: "that the FIFO does not underflow on a pop from empty. Use the signals 'rd_pop' and 'fifo_empty'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (fifo_empty && rd_pop) !== 1'b1
);`,
			},
			{
				ID: "fifo_mp_1",
				NL: "that no write is accepted on either port while the FIFO is full. Use the signals 'wr0_vld', 'wr1_vld', and 'fifo_full'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (fifo_full && (wr0_vld || wr1_vld)) !== 1'b1
);`,
			},
			{
				ID: "fifo_mp_2",
				NL: "that the occupancy never exceeds eight entries. Use the signal 'occupancy'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  occupancy <= 4'd8
);`,
			},
			{
				ID: "fifo_mp_3",
				NL: "that a simultaneous push on both write ports is eventually followed by a pop. Use the signals 'both_push' and 'rd_pop'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  both_push |-> strong(##[0:$] rd_pop)
);`,
			},
			{
				ID: "fifo_mp_4",
				NL: "that the push count reflects the two write valids. Use the signals 'push_count', 'wr0_vld', and 'wr1_vld'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  push_count == (wr0_vld + wr1_vld)
);`,
			},
			{
				ID: "fifo_mp_5",
				NL: "that when the FIFO is not empty, data is eventually popped. Use the signals 'fifo_empty' and 'rd_pop'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !fifo_empty |-> strong(##[0:$] rd_pop)
);`,
			},
		},
	}
}

// ---- Arbiters (4 variations, 37 pairs) ---------------------------------

func arbiterSource(kind string) string {
	extra := ""
	switch kind {
	case "rr":
		extra = `
reg [1:0] rr_ptr;
always @(posedge clk) begin
  if (!reset_) rr_ptr <= 'd0;
  else if (|tb_gnt) rr_ptr <= rr_ptr + 'd1;
end
`
	case "reverse_priority":
		extra = `
wire hold;
wire cont_gnt;
assign hold = busy && (tb_gnt == 'd0);
assign cont_gnt = busy && (tb_gnt != 'd0) && (tb_gnt == last_gnt);
`
	case "mask":
		extra = `
wire [3:0] masked_req;
assign masked_req = tb_req & req_mask;
`
	}
	maskPort := ""
	maskDecl := ""
	if kind == "mask" {
		maskPort = ",\n  req_mask"
		maskDecl = "input [3:0] req_mask;\n"
	}
	return `
module arbiter_tb (
  clk,
  reset_,
  tb_req,
  tb_gnt,
  busy` + maskPort + `
);
input clk;
input reset_;
input [3:0] tb_req;
input [3:0] tb_gnt;
input busy;
` + maskDecl + `wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
reg [3:0] last_gnt;
always @(posedge clk) begin
  if (!reset_) last_gnt <= 'd0;
  else if (|tb_gnt) last_gnt <= tb_gnt;
end
wire any_req;
assign any_req = |tb_req;
wire any_gnt;
assign any_gnt = |tb_gnt;
` + extra + `
endmodule
`
}

// commonArbiterPairs are shared structural checks (6 per variant).
func commonArbiterPairs(variant string) []Pair {
	return []Pair{
		{
			ID: "arbiter_" + variant + "_0",
			NL: "that the grant vector is always one-hot or zero. Use the signal 'tb_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  $onehot0(tb_gnt)
);`,
		},
		{
			ID: "arbiter_" + variant + "_1",
			NL: "that a grant is only given to a requesting client. Use the signals 'tb_req' and 'tb_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  ((tb_gnt & ~tb_req) != 'd0) !== 1'b1
);`,
		},
		{
			ID: "arbiter_" + variant + "_2",
			NL: "whether starvation occurs, i.e. check that each request from client is eventually granted. Use the signals 'busy', 'tb_req', and 'tb_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (!busy && |tb_req && (tb_gnt == 'd0)) !== 1'b1
);`,
		},
		{
			ID: "arbiter_" + variant + "_3",
			NL: "that no grant is given while the arbiter is busy. Use the signals 'busy' and 'tb_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  busy |-> (tb_gnt == 'd0)
);`,
		},
		{
			ID: "arbiter_" + variant + "_4",
			NL: "that a request with the arbiter idle is eventually granted. Use the signals 'any_req', 'busy', and 'any_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (any_req && !busy) |-> strong(##[0:$] any_gnt)
);`,
		},
		{
			ID: "arbiter_" + variant + "_5",
			NL: "that the recorded last grant tracks the grant vector one cycle later. Use the signals 'tb_gnt' and 'last_gnt'.",
			Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  |tb_gnt |=> (last_gnt == $past(tb_gnt))
);`,
		},
	}
}

func arbiters() []*Testbench {
	rr := &Testbench{
		Name: "arbiter_rr", Category: "Arbiter", Top: "arbiter_tb",
		Source: arbiterSource("rr"),
		Pairs: append(commonArbiterPairs("rr"), []Pair{
			{
				ID: "arbiter_rr_6",
				NL: "that the round-robin pointer advances after every grant. Use the signals 'tb_gnt' and 'rr_ptr'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  |tb_gnt |=> (rr_ptr == ($past(rr_ptr) + 2'd1))
);`,
			},
			{
				ID: "arbiter_rr_7",
				NL: "that the round-robin pointer holds when no grant is given. Use the signals 'tb_gnt' and 'rr_ptr'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (tb_gnt == 'd0) |=> $stable(rr_ptr)
);`,
			},
			{
				ID: "arbiter_rr_8",
				NL: "that back-to-back grants never go to the same client. Use the signals 'tb_gnt' and 'last_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (|tb_gnt && |last_gnt) |-> (tb_gnt != last_gnt)
);`,
			},
			{
				ID: "arbiter_rr_9",
				NL: "that the pointer resets to zero after reset. Use the signal 'rr_ptr'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  $rose(reset_) |-> (rr_ptr == 2'd0)
);`,
			},
		}...),
	}
	fixed := &Testbench{
		Name: "arbiter_fixed", Category: "Arbiter", Top: "arbiter_tb",
		Source: arbiterSource("fixed"),
		Pairs: append(commonArbiterPairs("fixed"), []Pair{
			{
				ID: "arbiter_fixed_6",
				NL: "that client zero has absolute priority: when it requests and the arbiter grants, the grant goes to client zero. Use the signals 'tb_req', 'tb_gnt', and 'any_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (tb_req[0] && any_gnt) |-> tb_gnt[0]
);`,
			},
			{
				ID: "arbiter_fixed_7",
				NL: "that client three is only granted when no other client requests. Use the signals 'tb_req' and 'tb_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  tb_gnt[3] |-> (tb_req[2:0] == 3'd0)
);`,
			},
			{
				ID: "arbiter_fixed_8",
				NL: "that a grant never goes to two priority levels at once. Use the signal 'tb_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !($countones(tb_gnt) > 1)
);`,
			},
		}...),
	}
	rev := &Testbench{
		Name: "arbiter_reverse_priority", Category: "Arbiter", Top: "arbiter_tb",
		Source: arbiterSource("reverse_priority"),
		Pairs: append(commonArbiterPairs("reverse_priority"), []Pair{
			{
				ID: "arbiter_reverse_priority_6",
				NL: "that the arbiter is never on hold or busy or on continued grant at the same time. Use the signals 'busy', 'hold', and 'cont_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !$onehot0({hold,busy,cont_gnt}) !== 1'b1
);`,
			},
			{
				ID: "arbiter_reverse_priority_7",
				NL: "that a hold cycle means the arbiter is busy without granting. Use the signals 'hold', 'busy', and 'tb_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  hold |-> (busy && (tb_gnt == 'd0))
);`,
			},
			{
				ID: "arbiter_reverse_priority_8",
				NL: "that a continued grant repeats the previous grant. Use the signals 'cont_gnt', 'tb_gnt', and 'last_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  cont_gnt |-> (tb_gnt == last_gnt)
);`,
			},
		}...),
	}
	mask := &Testbench{
		Name: "arbiter_mask", Category: "Arbiter", Top: "arbiter_tb",
		Source: arbiterSource("mask"),
		Pairs: append(commonArbiterPairs("mask"), []Pair{
			{
				ID: "arbiter_mask_6",
				NL: "that a masked-off client is never granted. Use the signals 'tb_gnt' and 'req_mask'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  ((tb_gnt & ~req_mask) != 'd0) !== 1'b1
);`,
			},
			{
				ID: "arbiter_mask_7",
				NL: "that the masked request vector is the bitwise AND of requests and mask. Use the signals 'masked_req', 'tb_req', and 'req_mask'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  masked_req == (tb_req & req_mask)
);`,
			},
			{
				ID: "arbiter_mask_8",
				NL: "that with a zero mask the arbiter never grants. Use the signals 'req_mask' and 'tb_gnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (req_mask == 'd0) |-> (tb_gnt == 'd0)
);`,
			},
		}...),
	}
	return []*Testbench{rr, fixed, rev, mask}
}

// ---- FSMs (2 variations, 2 pairs each) ---------------------------------

func fsms() []*Testbench {
	handshake := &Testbench{
		Name: "fsm_handshake", Category: "FSM", Top: "fsm_hs_tb",
		Source: `
module fsm_hs_tb (clk, reset_, req, ack, fsm_state);
input clk;
input reset_;
input req;
input ack;
input [1:0] fsm_state;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
parameter IDLE = 2'b00;
parameter WAIT = 2'b01;
parameter DONE = 2'b10;
reg [1:0] model_state;
always @(posedge clk) begin
  if (!reset_) model_state <= IDLE;
  else begin
    case (model_state)
      IDLE: if (req) model_state <= WAIT;
      WAIT: if (ack) model_state <= DONE;
      DONE: model_state <= IDLE;
      default: model_state <= IDLE;
    endcase
  end
end
endmodule
`,
		Pairs: []Pair{
			{
				ID: "fsm_handshake_0",
				NL: "that the handshake FSM only leaves IDLE on a request. Use the signals 'model_state' and 'req'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (model_state == 2'b00 && !req) |=> (model_state == 2'b00)
);`,
			},
			{
				ID: "fsm_handshake_1",
				NL: "that DONE always returns to IDLE on the next cycle. Use the signal 'model_state'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (model_state == 2'b10) |=> (model_state == 2'b00)
);`,
			},
		},
	}
	gray := &Testbench{
		Name: "fsm_gray", Category: "FSM", Top: "fsm_gray_tb",
		Source: `
module fsm_gray_tb (clk, reset_, en, gray_state);
input clk;
input reset_;
input en;
input [1:0] gray_state;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
reg [1:0] model_gray;
always @(posedge clk) begin
  if (!reset_) model_gray <= 2'b00;
  else if (en) begin
    case (model_gray)
      2'b00: model_gray <= 2'b01;
      2'b01: model_gray <= 2'b11;
      2'b11: model_gray <= 2'b10;
      2'b10: model_gray <= 2'b00;
    endcase
  end
end
endmodule
`,
		Pairs: []Pair{
			{
				ID: "fsm_gray_0",
				NL: "that consecutive states of the gray-code FSM differ in exactly one bit when enabled. Use the signals 'model_gray' and 'en'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  en |=> ($countones(model_gray ^ $past(model_gray)) == 1)
);`,
			},
			{
				ID: "fsm_gray_1",
				NL: "that the gray-code FSM holds its state when not enabled. Use the signals 'model_gray' and 'en'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  !en |=> $stable(model_gray)
);`,
			},
		},
	}
	return []*Testbench{handshake, gray}
}

// ---- Counter (1 variation, 5 pairs) ------------------------------------

func counter() *Testbench {
	return &Testbench{
		Name: "counter", Category: "Counter", Top: "counter_tb",
		Source: `
module counter_tb (clk, reset_, en, clr, cnt_out);
input clk;
input reset_;
input en;
input clr;
input [3:0] cnt_out;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
parameter MAX_COUNT = 4'd11;
reg [3:0] cnt;
always @(posedge clk) begin
  if (!reset_) cnt <= 'd0;
  else if (clr) cnt <= 'd0;
  else if (en) begin
    if (cnt == MAX_COUNT) cnt <= 'd0;
    else cnt <= cnt + 'd1;
  end
end
wire at_max;
assign at_max = (cnt == MAX_COUNT);
endmodule
`,
		Pairs: []Pair{
			{
				ID: "counter_0",
				NL: "that the counter never exceeds its maximum value. Use the signals 'cnt' and 'MAX_COUNT'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  cnt <= MAX_COUNT
);`,
			},
			{
				ID: "counter_1",
				NL: "that a clear forces the counter to zero on the next cycle. Use the signals 'clr' and 'cnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  clr |=> (cnt == 4'd0)
);`,
			},
			{
				ID: "counter_2",
				NL: "that the counter wraps to zero after reaching the maximum while enabled and not cleared. Use the signals 'at_max', 'en', 'clr', and 'cnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (at_max && en && !clr) |=> (cnt == 4'd0)
);`,
			},
			{
				ID: "counter_3",
				NL: "that the counter increments by one when enabled, below the maximum, and not cleared. Use the signals 'en', 'clr', 'at_max', and 'cnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (en && !clr && !at_max) |=> (cnt == ($past(cnt) + 4'd1))
);`,
			},
			{
				ID: "counter_4",
				NL: "that the counter holds its value when neither enabled nor cleared. Use the signals 'en', 'clr', and 'cnt'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (!en && !clr) |=> $stable(cnt)
);`,
			},
		},
	}
}

// ---- RAM (1 variation, 7 pairs) ----------------------------------------

func ram() *Testbench {
	return &Testbench{
		Name: "ram_1r1w", Category: "RAM", Top: "ram_tb",
		Source: `
module ram_tb (clk, reset_, wr_en, wr_addr, wr_data, rd_en, rd_addr, rd_data);
input clk;
input reset_;
input wr_en;
input [1:0] wr_addr;
input [3:0] wr_data;
input rd_en;
input [1:0] rd_addr;
input [3:0] rd_data;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
reg [3:0] mem0;
reg [3:0] mem1;
reg [3:0] mem2;
reg [3:0] mem3;
always @(posedge clk) begin
  if (!reset_) mem0 <= 'd0;
  else if (wr_en && (wr_addr == 'd0)) mem0 <= wr_data;
end
always @(posedge clk) begin
  if (!reset_) mem1 <= 'd0;
  else if (wr_en && (wr_addr == 'd1)) mem1 <= wr_data;
end
always @(posedge clk) begin
  if (!reset_) mem2 <= 'd0;
  else if (wr_en && (wr_addr == 'd2)) mem2 <= wr_data;
end
always @(posedge clk) begin
  if (!reset_) mem3 <= 'd0;
  else if (wr_en && (wr_addr == 'd3)) mem3 <= wr_data;
end
wire [3:0] mem_out;
assign mem_out = (rd_addr == 'd0) ? mem0 :
                 (rd_addr == 'd1) ? mem1 :
                 (rd_addr == 'd2) ? mem2 : mem3;
wire collision;
assign collision = wr_en && rd_en && (wr_addr == rd_addr);
endmodule
`,
		Pairs: []Pair{
			{
				ID: "ram_0",
				NL: "that read data matches the stored memory word on a read without collision. Use the signals 'rd_en', 'collision', 'rd_data', and 'mem_out'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (rd_en && !collision) |-> (rd_data == mem_out)
);`,
			},
			{
				ID: "ram_1",
				NL: "that a write to address zero is visible on the next cycle. Use the signals 'wr_en', 'wr_addr', 'wr_data', and 'mem0'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (wr_en && (wr_addr == 2'd0)) |=> (mem0 == $past(wr_data))
);`,
			},
			{
				ID: "ram_2",
				NL: "that a memory word holds its value when no write targets it. Use the signals 'wr_en', 'wr_addr', and 'mem1'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (!wr_en || (wr_addr != 2'd1)) |=> $stable(mem1)
);`,
			},
			{
				ID: "ram_3",
				NL: "that a collision is flagged exactly when a read and a write hit the same address. Use the signals 'collision', 'wr_en', 'rd_en', 'wr_addr', and 'rd_addr'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  collision == (wr_en && rd_en && (wr_addr == rd_addr))
);`,
			},
			{
				ID: "ram_4",
				NL: "that the read mux selects the addressed word. Use the signals 'rd_addr', 'mem_out', and 'mem2'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (rd_addr == 2'd2) |-> (mem_out == mem2)
);`,
			},
			{
				ID: "ram_5",
				NL: "that a read is eventually issued after a write. Use the signals 'wr_en' and 'rd_en'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  wr_en |-> strong(##[0:$] rd_en)
);`,
			},
			{
				ID: "ram_6",
				NL: "that back-to-back writes to the same address keep only the newest data. Use the signals 'wr_en', 'wr_addr', 'wr_data', and 'mem3'.",
				Reference: `asrt: assert property (@(posedge clk) disable iff (tb_reset)
  (wr_en && (wr_addr == 2'd3) && $past(wr_en && (wr_addr == 2'd3))) |=> (mem3 == $past(wr_data))
);`,
			},
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
