package formal

import (
	"sync"
	"testing"
)

func pat(len int, name string, vals ...uint64) Pattern {
	return Pattern{Len: len, Vals: map[string][]uint64{name: vals}}
}

func TestBankRingAndOrder(t *testing.T) {
	b := NewBank(3)
	if b.Len() != 0 || b.Patterns(4) != nil {
		t.Fatal("fresh bank not empty")
	}
	for i := uint64(1); i <= 5; i++ {
		b.Add(pat(1, "s", i))
	}
	if b.Len() != 3 || b.Adds() != 5 {
		t.Fatalf("len=%d adds=%d", b.Len(), b.Adds())
	}
	got := b.Patterns(8)
	if len(got) != 3 {
		t.Fatalf("patterns returned %d", len(got))
	}
	// Most recent first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].Vals["s"][0] != want {
			t.Fatalf("pattern %d = %d, want %d", i, got[i].Vals["s"][0], want)
		}
	}
	if n := len(b.Patterns(2)); n != 2 {
		t.Fatalf("capped request returned %d", n)
	}
}

func TestBankNilAndEmptyAdds(t *testing.T) {
	var nilBank *Bank
	nilBank.Add(pat(1, "s", 1)) // must not panic
	if nilBank.Len() != 0 || nilBank.Patterns(4) != nil || nilBank.Adds() != 0 {
		t.Fatal("nil bank should be inert")
	}
	b := NewBank(0)
	b.Add(Pattern{})                                    // empty pattern dropped
	b.Add(Pattern{Len: 3})                              // no signals dropped
	b.Add(Pattern{Vals: map[string][]uint64{"s": {1}}}) // zero length dropped
	if b.Len() != 0 {
		t.Fatalf("degenerate patterns were stored: %d", b.Len())
	}
}

func TestBankConcurrent(t *testing.T) {
	b := NewBank(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(pat(2, "s", uint64(w), uint64(i)))
				b.Patterns(8)
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != 16 || b.Adds() != 800 {
		t.Fatalf("len=%d adds=%d", b.Len(), b.Adds())
	}
}

func TestLaneWords(t *testing.T) {
	pats := []Pattern{
		pat(2, "s", 0b01, 0b11), // lane 0
		pat(1, "s", 0b10),       // lane 1 (no position 1)
		pat(2, "t", 5, 6),       // lane 2 (no signal s)
	}
	dst := make([]uint64, 2)
	LaneWords(pats, 3, "s", 0, dst)
	if dst[0] != 0b001 || dst[1] != 0b010 {
		t.Fatalf("pos 0: dst=%b,%b", dst[0], dst[1])
	}
	LaneWords(pats, 3, "s", 1, dst)
	if dst[0] != 0b001 || dst[1] != 0b001 {
		t.Fatalf("pos 1: dst=%b,%b", dst[0], dst[1])
	}
	LaneWords(pats, 3, "missing", 0, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("missing signal should zero the words")
	}
}

func TestSimStatsCounters(t *testing.T) {
	var s Stats
	s.SimPatterns(64)
	s.SimPatterns(0) // dropped
	s.SimRefuted(true, 1)
	s.SimRefuted(false, 2)
	snap := s.Snapshot().Sim
	want := SimStats{Patterns: 64, Refutations: 2, SATAvoided: 3, BankHits: 1}
	if snap != want {
		t.Fatalf("sim stats = %+v, want %+v", snap, want)
	}
	sum := s.Snapshot().Add(s.Snapshot())
	if sum.Sim.Patterns != 128 || sum.Sim.SATAvoided != 6 {
		t.Fatalf("Add broken: %+v", sum.Sim)
	}
	if d := sum.Sub(s.Snapshot()); d.Sim != want {
		t.Fatalf("Sub broken: %+v", d.Sim)
	}
	var nilStats *Stats
	nilStats.SimPatterns(1)
	nilStats.SimRefuted(true, 1) // must not panic
}
