// The pattern bank: counterexample-guided refinement storage for the
// bit-parallel simulation prefilter (DESIGN.md §10). Every SAT model
// found anywhere in a run — an equivalence witness, a BMC
// counterexample, a refuted induction step — is folded back into one
// shared bank as a concrete signal-level trace, and later queries
// replay the banked traces (alongside fresh random patterns) before
// opening a solver: assertion pairs in one benchmark run are highly
// correlated, so the pattern separating one pair very often separates
// the next.
package formal

import "sync"

// Pattern is one concrete trace at the signal level: per-signal values
// indexed by trace position. Signal-level storage is what makes
// patterns portable across queries — each query maps its own input
// bits onto the named values and treats missing signals or positions
// as zero. Patterns stored in a Bank are read-only; callers must not
// mutate a Pattern after Add or after receiving it from Patterns.
type Pattern struct {
	// Len is the number of positions the trace covers.
	Len int
	// Vals maps a signal name to its value at each position.
	Vals map[string][]uint64
}

// Bank is a concurrency-safe, bounded ring of learned patterns shared
// across an engine's whole run (it lives in the engine's shareable
// memo pool next to the equivalence cache and survives Reconfigure).
// When full, new patterns overwrite the oldest. A nil *Bank is valid
// and drops every Add.
type Bank struct {
	mu   sync.Mutex
	pats []Pattern
	next int // ring write cursor once len(pats) == cap
	cap  int
	adds int64
}

// DefaultBankCap bounds the bank when NewBank is given no capacity.
const DefaultBankCap = 128

// NewBank returns an empty bank holding at most cap patterns
// (DefaultBankCap when cap <= 0).
func NewBank(cap int) *Bank {
	if cap <= 0 {
		cap = DefaultBankCap
	}
	return &Bank{cap: cap}
}

// Add stores a pattern, evicting the oldest when the bank is full.
func (b *Bank) Add(p Pattern) {
	if b == nil || p.Len == 0 || len(p.Vals) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.adds++
	if len(b.pats) < b.cap {
		b.pats = append(b.pats, p)
		return
	}
	b.pats[b.next] = p
	b.next = (b.next + 1) % b.cap
}

// Patterns returns up to max patterns, most recently added first. The
// returned slice is a fresh copy but the Pattern contents are shared —
// read-only by contract. A nil *Bank returns nil.
func (b *Bank) Patterns(max int) []Pattern {
	if b == nil || max <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.pats)
	if n == 0 {
		return nil
	}
	if max > n {
		max = n
	}
	out := make([]Pattern, 0, max)
	// Newest-first: walk backwards from the write cursor.
	start := b.next - 1
	if len(b.pats) < b.cap {
		start = len(b.pats) - 1
	}
	for i := 0; i < max; i++ {
		idx := (start - i + n) % n
		out = append(out, b.pats[idx])
	}
	return out
}

// Len reports the number of patterns currently held.
func (b *Bank) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pats)
}

// Adds reports the lifetime number of patterns folded in (including
// ones since evicted).
func (b *Bank) Adds() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.adds
}

// LaneWords packs the first n patterns' value of (name, pos) into dst:
// dst[i] receives bit i of each pattern's value in that pattern's
// lane. One map lookup per pattern covers a whole signal, where a
// per-bit helper would pay the lookup width × n times. Signals or
// positions a pattern does not cover stay zero.
func LaneWords(pats []Pattern, n int, name string, pos int, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < n; j++ {
		vals := pats[j].Vals[name]
		if pos >= len(vals) {
			continue
		}
		v := vals[pos]
		lane := uint64(1) << uint(j)
		for i := range dst {
			if i < 64 && v>>uint(i)&1 == 1 {
				dst[i] |= lane
			}
		}
	}
}

// SplitMix64 steps a deterministic 64-bit generator — the random
// pattern source of the simulation prefilter. Determinism matters only
// for reproducible stats and witness traces; verdicts are
// pattern-independent because the prefilter is refute-only with a SAT
// fallback.
func SplitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
