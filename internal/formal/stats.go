// Package formal holds cross-cutting instrumentation for the formal
// backend: the equivalence checker and the model checker both run
// incremental, assumption-based SAT sessions with bound ramping, and
// both report into one Stats sink so the engine can surface
// solver-reuse numbers next to its cache statistics.
package formal

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates incremental-backend counters. All fields are
// atomic so one Stats value can be shared across the engine's worker
// pool; a nil *Stats is valid and drops every report.
type Stats struct {
	queries     atomic.Int64 // incremental solver sessions opened
	solves      atomic.Int64 // individual Solve calls issued
	earlyStops  atomic.Int64 // sessions decided below their final bound
	conflicts   atomic.Int64 // SAT conflicts spent across all sessions
	learntKept  atomic.Int64 // learnt clauses alive entering a reused call
	gatesShared atomic.Int64 // circuit nodes reused instead of re-encoded
	encoded     atomic.Int64 // circuit nodes Tseitin-encoded into solvers
}

// Query records one incremental session: the number of Solve calls it
// issued, the conflicts it spent, how many learnt clauses later calls
// inherited from earlier ones, and whether the verdict arrived before
// the final ramp bound.
func (s *Stats) Query(solves, conflicts, learntKept int64, early bool) {
	if s == nil {
		return
	}
	s.queries.Add(1)
	s.solves.Add(solves)
	s.conflicts.Add(conflicts)
	s.learntKept.Add(learntKept)
	if early {
		s.earlyStops.Add(1)
	}
}

// GatesShared records circuit nodes a ramp step obtained from the
// structural hash instead of building and encoding afresh.
func (s *Stats) GatesShared(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.gatesShared.Add(n)
}

// NodesEncoded records circuit nodes a session actually emitted as
// CNF (its emitter's high-water count at close) — the denominator
// GatesShared saves against.
func (s *Stats) NodesEncoded(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.encoded.Add(n)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Queries     int64 `json:"queries"`
	Solves      int64 `json:"solves"`
	EarlyStops  int64 `json:"early_stops"`
	Conflicts   int64 `json:"conflicts"`
	LearntKept  int64 `json:"learnt_kept"`
	GatesShared int64 `json:"gates_shared"`
	Encoded     int64 `json:"encoded"`
}

// Snapshot copies the counters; zero for a nil receiver.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Queries:     s.queries.Load(),
		Solves:      s.solves.Load(),
		EarlyStops:  s.earlyStops.Load(),
		Conflicts:   s.conflicts.Load(),
		LearntKept:  s.learntKept.Load(),
		GatesShared: s.gatesShared.Load(),
		Encoded:     s.encoded.Load(),
	}
}

func (s Snapshot) String() string {
	if s.Queries == 0 {
		return "formal backend: no incremental queries"
	}
	return fmt.Sprintf(
		"formal backend: %d queries, %d incremental solves (%.2f/query), %d early ramp exits (%.1f%%), %d conflicts, %d learnt clauses carried, %d gates shared / %d encoded",
		s.Queries, s.Solves, float64(s.Solves)/float64(s.Queries),
		s.EarlyStops, 100*float64(s.EarlyStops)/float64(s.Queries),
		s.Conflicts, s.LearntKept, s.GatesShared, s.Encoded)
}
