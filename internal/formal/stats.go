// Package formal holds cross-cutting instrumentation for the formal
// backend: the equivalence checker and the model checker both run
// incremental, assumption-based SAT sessions with bound ramping, and
// both report into one Stats sink so the engine can surface
// solver-reuse numbers next to its cache statistics.
package formal

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates incremental-backend counters. All fields are
// atomic so one Stats value can be shared across the engine's worker
// pool; a nil *Stats is valid and drops every report.
type Stats struct {
	queries     atomic.Int64 // incremental solver sessions opened
	solves      atomic.Int64 // individual Solve calls issued
	earlyStops  atomic.Int64 // sessions decided below their final bound
	conflicts   atomic.Int64 // SAT conflicts spent across all sessions
	learntKept  atomic.Int64 // learnt clauses alive entering a reused call
	gatesShared atomic.Int64 // circuit nodes reused instead of re-encoded
	encoded     atomic.Int64 // circuit nodes Tseitin-encoded into solvers

	// Bit-parallel simulation prefilter counters (DESIGN.md §10).
	simPatterns    atomic.Int64 // pattern lanes simulated
	simRefutations atomic.Int64 // queries refuted by simulation alone
	simSATAvoided  atomic.Int64 // SAT calls skipped thanks to a sim witness
	simBankHits    atomic.Int64 // refutations from a recycled counterexample

	// Assumed-lemma pipeline counters (DESIGN.md §12): candidate
	// helper assertions submitted to CheckWithLemmas, how many were
	// themselves proved (and hence assumed), and how many turned out
	// load-bearing for the target proof.
	lemmaCandidates  atomic.Int64
	lemmaProved      atomic.Int64
	lemmaLoadBearing atomic.Int64

	// Solver wall-clock accounting (DESIGN.md §11): total nanoseconds
	// spent inside formal checks plus a per-check latency histogram,
	// surfaced by the service tier's /metrics endpoint.
	solveNS   atomic.Int64
	solveHist [SolveWallBucketCount]atomic.Int64
}

// SolveWallBuckets are the histogram upper bounds, in seconds, for
// per-check solver wall-clock observations; the implicit final bucket
// is +Inf.
var SolveWallBuckets = [...]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// SolveWallBucketCount is len(SolveWallBuckets) + 1 (the +Inf bucket).
const SolveWallBucketCount = 9

// SolveWall records the wall-clock of one complete formal check (an
// equivalence pair or a model-checking property): total time plus one
// histogram observation.
func (s *Stats) SolveWall(ns int64) {
	if s == nil || ns < 0 {
		return
	}
	s.solveNS.Add(ns)
	sec := float64(ns) / 1e9
	i := 0
	for i < len(SolveWallBuckets) && sec > SolveWallBuckets[i] {
		i++
	}
	s.solveHist[i].Add(1)
}

// Query records one incremental session: the number of Solve calls it
// issued, the conflicts it spent, how many learnt clauses later calls
// inherited from earlier ones, and whether the verdict arrived before
// the final ramp bound.
func (s *Stats) Query(solves, conflicts, learntKept int64, early bool) {
	if s == nil {
		return
	}
	s.queries.Add(1)
	s.solves.Add(solves)
	s.conflicts.Add(conflicts)
	s.learntKept.Add(learntKept)
	if early {
		s.earlyStops.Add(1)
	}
}

// GatesShared records circuit nodes a ramp step obtained from the
// structural hash instead of building and encoding afresh.
func (s *Stats) GatesShared(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.gatesShared.Add(n)
}

// NodesEncoded records circuit nodes a session actually emitted as
// CNF (its emitter's high-water count at close) — the denominator
// GatesShared saves against.
func (s *Stats) NodesEncoded(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.encoded.Add(n)
}

// SimPatterns records pattern lanes evaluated by the bit-parallel
// prefilter.
func (s *Stats) SimPatterns(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.simPatterns.Add(n)
}

// SimRefuted records one prefilter refutation: a query decided by a
// concrete simulation witness. fromBank marks witnesses found among
// recycled counterexample patterns (vs fresh random ones); satAvoided
// is the number of solver calls the refutation made unnecessary.
func (s *Stats) SimRefuted(fromBank bool, satAvoided int64) {
	if s == nil {
		return
	}
	s.simRefutations.Add(1)
	s.simSATAvoided.Add(satAvoided)
	if fromBank {
		s.simBankHits.Add(1)
	}
}

// Lemmas records one assumed-lemma pipeline run: the number of
// candidate helpers submitted, how many were proved (only proved
// helpers are ever assumed), and how many were load-bearing for the
// target proof.
func (s *Stats) Lemmas(candidates, proved, loadBearing int64) {
	if s == nil {
		return
	}
	s.lemmaCandidates.Add(candidates)
	s.lemmaProved.Add(proved)
	s.lemmaLoadBearing.Add(loadBearing)
}

// LemmaStats is a point-in-time copy of the assumed-lemma counters.
type LemmaStats struct {
	// Candidates is the number of helper assertions submitted.
	Candidates int64 `json:"candidates"`
	// Proved is how many candidates were proved and assumed.
	Proved int64 `json:"proved"`
	// LoadBearing is how many proved helpers the target proof
	// actually depended on.
	LoadBearing int64 `json:"load_bearing"`
}

func (s LemmaStats) String() string {
	if s.Candidates == 0 {
		return "lemma pipeline: no candidates"
	}
	return fmt.Sprintf(
		"lemma pipeline: %d candidates, %d proved and assumed, %d load-bearing",
		s.Candidates, s.Proved, s.LoadBearing)
}

// SimStats is a point-in-time copy of the simulation-prefilter
// counters.
type SimStats struct {
	// Patterns is the number of pattern lanes simulated.
	Patterns int64 `json:"patterns"`
	// Refutations is the number of queries decided by simulation alone.
	Refutations int64 `json:"refutations"`
	// SATAvoided is the number of solver calls skipped.
	SATAvoided int64 `json:"sat_avoided"`
	// BankHits is the number of refutations found among recycled
	// counterexample patterns rather than fresh random ones.
	BankHits int64 `json:"bank_hits"`
}

func (s SimStats) String() string {
	if s.Patterns == 0 {
		return "sim prefilter: off"
	}
	return fmt.Sprintf(
		"sim prefilter: %d patterns simulated, %d refutations (%d recycled), %d SAT calls avoided",
		s.Patterns, s.Refutations, s.BankHits, s.SATAvoided)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Queries     int64 `json:"queries"`
	Solves      int64 `json:"solves"`
	EarlyStops  int64 `json:"early_stops"`
	Conflicts   int64 `json:"conflicts"`
	LearntKept  int64 `json:"learnt_kept"`
	GatesShared int64 `json:"gates_shared"`
	Encoded     int64 `json:"encoded"`
	// SolveWallNS is total wall-clock nanoseconds spent inside formal
	// checks; SolveWallHist is the per-check latency histogram (raw
	// per-bucket counts over SolveWallBuckets, last bucket +Inf).
	SolveWallNS   int64                       `json:"solve_wall_ns,omitempty"`
	SolveWallHist [SolveWallBucketCount]int64 `json:"solve_wall_hist,omitzero"`
	// Sim carries the simulation-prefilter counters.
	Sim SimStats `json:"sim"`
	// Lemma carries the assumed-lemma pipeline counters.
	Lemma LemmaStats `json:"lemma,omitzero"`
}

// Snapshot copies the counters; zero for a nil receiver.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	var hist [SolveWallBucketCount]int64
	for i := range hist {
		hist[i] = s.solveHist[i].Load()
	}
	return Snapshot{
		Queries:       s.queries.Load(),
		Solves:        s.solves.Load(),
		EarlyStops:    s.earlyStops.Load(),
		Conflicts:     s.conflicts.Load(),
		LearntKept:    s.learntKept.Load(),
		GatesShared:   s.gatesShared.Load(),
		Encoded:       s.encoded.Load(),
		SolveWallNS:   s.solveNS.Load(),
		SolveWallHist: hist,
		Sim: SimStats{
			Patterns:    s.simPatterns.Load(),
			Refutations: s.simRefutations.Load(),
			SATAvoided:  s.simSATAvoided.Load(),
			BankHits:    s.simBankHits.Load(),
		},
		Lemma: LemmaStats{
			Candidates:  s.lemmaCandidates.Load(),
			Proved:      s.lemmaProved.Load(),
			LoadBearing: s.lemmaLoadBearing.Load(),
		},
	}
}

// Add returns the field-wise sum of two snapshots — the distributed
// merge fold (shard deltas are disjoint traffic on separate pools).
func (s Snapshot) Add(o Snapshot) Snapshot {
	var hist [SolveWallBucketCount]int64
	for i := range hist {
		hist[i] = s.SolveWallHist[i] + o.SolveWallHist[i]
	}
	return Snapshot{
		Queries:       s.Queries + o.Queries,
		Solves:        s.Solves + o.Solves,
		EarlyStops:    s.EarlyStops + o.EarlyStops,
		Conflicts:     s.Conflicts + o.Conflicts,
		LearntKept:    s.LearntKept + o.LearntKept,
		GatesShared:   s.GatesShared + o.GatesShared,
		Encoded:       s.Encoded + o.Encoded,
		SolveWallNS:   s.SolveWallNS + o.SolveWallNS,
		SolveWallHist: hist,
		Sim: SimStats{
			Patterns:    s.Sim.Patterns + o.Sim.Patterns,
			Refutations: s.Sim.Refutations + o.Sim.Refutations,
			SATAvoided:  s.Sim.SATAvoided + o.Sim.SATAvoided,
			BankHits:    s.Sim.BankHits + o.Sim.BankHits,
		},
		Lemma: LemmaStats{
			Candidates:  s.Lemma.Candidates + o.Lemma.Candidates,
			Proved:      s.Lemma.Proved + o.Lemma.Proved,
			LoadBearing: s.Lemma.LoadBearing + o.Lemma.LoadBearing,
		},
	}
}

// Sub returns the field-wise difference s - o — the per-run delta of
// cumulative counters.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	var hist [SolveWallBucketCount]int64
	for i := range hist {
		hist[i] = s.SolveWallHist[i] - o.SolveWallHist[i]
	}
	return Snapshot{
		Queries:       s.Queries - o.Queries,
		Solves:        s.Solves - o.Solves,
		EarlyStops:    s.EarlyStops - o.EarlyStops,
		Conflicts:     s.Conflicts - o.Conflicts,
		LearntKept:    s.LearntKept - o.LearntKept,
		GatesShared:   s.GatesShared - o.GatesShared,
		Encoded:       s.Encoded - o.Encoded,
		SolveWallNS:   s.SolveWallNS - o.SolveWallNS,
		SolveWallHist: hist,
		Sim: SimStats{
			Patterns:    s.Sim.Patterns - o.Sim.Patterns,
			Refutations: s.Sim.Refutations - o.Sim.Refutations,
			SATAvoided:  s.Sim.SATAvoided - o.Sim.SATAvoided,
			BankHits:    s.Sim.BankHits - o.Sim.BankHits,
		},
		Lemma: LemmaStats{
			Candidates:  s.Lemma.Candidates - o.Lemma.Candidates,
			Proved:      s.Lemma.Proved - o.Lemma.Proved,
			LoadBearing: s.Lemma.LoadBearing - o.Lemma.LoadBearing,
		},
	}
}

func (s Snapshot) String() string {
	if s.Queries == 0 {
		return "formal backend: no incremental queries"
	}
	return fmt.Sprintf(
		"formal backend: %d queries, %d incremental solves (%.2f/query), %d early ramp exits (%.1f%%), %d conflicts, %d learnt clauses carried, %d gates shared / %d encoded",
		s.Queries, s.Solves, float64(s.Solves)/float64(s.Queries),
		s.EarlyStops, 100*float64(s.EarlyStops)/float64(s.Queries),
		s.Conflicts, s.LearntKept, s.GatesShared, s.Encoded)
}
