package svagen

import (
	"testing"

	"fveval/internal/equiv"
	"fveval/internal/ltl"
	"fveval/internal/nl"
	"fveval/internal/sva"
)

func TestDatasetSizeAndDeterminism(t *testing.T) {
	d1 := Dataset(50)
	d2 := Dataset(50)
	if len(d1) != 50 {
		t.Fatalf("dataset size %d", len(d1))
	}
	for i := range d1 {
		if d1[i].NL != d2[i].NL || d1[i].Reference.String() != d2[i].Reference.String() {
			t.Fatalf("instance %d not deterministic", i)
		}
	}
}

func TestReferencesAreWellFormed(t *testing.T) {
	sigs := equiv.DefaultMachineSigs()
	for _, inst := range Dataset(120) {
		if err := sva.Validate(inst.Reference); err != nil {
			t.Errorf("%s: reference fails validation: %v", inst.ID, err)
			continue
		}
		f, err := ltl.LowerAssertion(inst.Reference)
		if err != nil {
			t.Errorf("%s: reference fails lowering: %v", inst.ID, err)
			continue
		}
		for _, name := range ltl.SignalNames(f) {
			if _, ok := sigs.Widths[name]; !ok {
				t.Errorf("%s: reference uses unknown signal %s", inst.ID, name)
			}
		}
	}
}

func TestDescriptionsPassCritic(t *testing.T) {
	for _, inst := range Dataset(120) {
		if inst.NL == "" {
			t.Errorf("%s: empty description", inst.ID)
			continue
		}
		if err := nl.Critic(inst.NL, inst.Reference); err != nil {
			t.Errorf("%s: shipped description fails critic: %v\nNL: %s\nref: %s",
				inst.ID, err, inst.NL, inst.Reference)
		}
	}
}

func TestRetryLoopExercised(t *testing.T) {
	// With 25% sloppiness, some instances must have required retries.
	retried := 0
	for _, inst := range Dataset(200) {
		if inst.Retries > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Errorf("critic retry loop never triggered across 200 instances")
	}
}

func TestVariety(t *testing.T) {
	seen := map[string]bool{}
	temporal := 0
	for _, inst := range Dataset(100) {
		seen[inst.Reference.Body.String()] = true
		if _, ok := inst.Reference.Body.(*sva.PropImpl); ok {
			temporal++
		}
	}
	if len(seen) < 90 {
		t.Errorf("only %d distinct assertions in 100", len(seen))
	}
	if temporal < 40 {
		t.Errorf("too few temporal assertions: %d", temporal)
	}
}
