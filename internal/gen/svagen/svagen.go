// Package svagen generates the NL2SVA-Machine benchmark: random SVA
// assertions over the symbolic signal environment (random operator and
// signal sampling, paper §3.3 step 1), naturalized through package nl
// with a critic-validated retry loop (steps 2-4).
package svagen

import (
	"fmt"
	"math/rand"
	"sync"

	"fveval/internal/nl"
	"fveval/internal/sva"
)

// Instance is one NL2SVA-Machine test case.
type Instance struct {
	ID        string
	NL        string         // naturalized description
	Reference *sva.Assertion // ground-truth assertion
	Retries   int            // naturalizer retries the critic forced
}

// oneBit and multiBit signals of the machine environment (widths in
// equiv.DefaultMachineSigs).
var (
	oneBit   = []string{"sig_D", "sig_E", "sig_F", "sig_I", "sig_J"}
	multiBit = []string{"sig_A", "sig_B", "sig_C", "sig_G", "sig_H"}
)

// Generate creates one random assertion instance; the description is
// regenerated until the critic accepts it (at most maxRetries, then
// the exact non-sloppy rendering is used).
func Generate(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	body := randomProperty(rng)
	a := &sva.Assertion{ClockEdge: "posedge", ClockName: "clk", Body: body}

	const maxRetries = 4
	retries := 0
	var desc string
	for ; retries <= maxRetries; retries++ {
		sloppy := 0.25
		if retries == maxRetries {
			sloppy = 0 // final attempt is exact
		}
		n := &nl.Naturalizer{
			Rng:        rand.New(rand.NewSource(seed*31 + int64(retries))),
			Sloppiness: sloppy,
		}
		d, err := n.Describe(a)
		if err != nil {
			// Regenerate a simpler body; should not happen for the
			// generator's shapes.
			body = randomBoolProperty(rng)
			a.Body = body
			continue
		}
		if nl.Critic(d, a) == nil {
			desc = d
			break
		}
	}
	if desc == "" {
		n := &nl.Naturalizer{Rng: rand.New(rand.NewSource(seed * 37)), Sloppiness: 0}
		desc, _ = n.Describe(a)
	}
	return &Instance{
		ID:        fmt.Sprintf("nl2sva_machine_%d", seed),
		NL:        desc,
		Reference: a,
		Retries:   retries,
	}
}

// genCache memoizes Generate by seed: generation is deterministic and
// instances are treated read-only everywhere, so every engine sharing
// a process (benchmarks, the service, repeated runs) reuses one copy
// instead of re-running the generator and naturalizer critic loop.
var genCache sync.Map // int64 -> *Instance

// ResetCache drops the memoized instances (benchmark isolation).
func ResetCache() { genCache.Clear() }

// Dataset returns the n-instance benchmark (the paper uses 300).
func Dataset(n int) []*Instance {
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		seed := int64(i + 1)
		if v, ok := genCache.Load(seed); ok {
			out = append(out, v.(*Instance))
			continue
		}
		inst := Generate(seed)
		genCache.Store(seed, inst)
		out = append(out, inst)
	}
	return out
}

func randomProperty(rng *rand.Rand) sva.Property {
	switch rng.Intn(5) {
	case 0:
		return randomBoolProperty(rng)
	case 1: // A |-> ##N B
		d := 1 + rng.Intn(5)
		return &sva.PropImpl{
			S:       &sva.SeqExpr{E: randomCond(rng, 2)},
			Overlap: true,
			P: &sva.PropSeq{S: &sva.SeqDelay{
				D: sva.Delay{Lo: d, Hi: d},
				R: &sva.SeqExpr{E: randomCond(rng, 1)},
			}},
		}
	case 2: // A |=> B
		return &sva.PropImpl{
			S: &sva.SeqExpr{E: randomCond(rng, 2)},
			P: &sva.PropSeq{S: &sva.SeqExpr{E: randomCond(rng, 1)}},
		}
	case 3: // A |-> ##[a:b] B
		lo := 1 + rng.Intn(3)
		return &sva.PropImpl{
			S:       &sva.SeqExpr{E: randomCond(rng, 1)},
			Overlap: true,
			P: &sva.PropSeq{S: &sva.SeqDelay{
				D: sva.Delay{Lo: lo, Hi: lo + 1 + rng.Intn(3)},
				R: &sva.SeqExpr{E: randomCond(rng, 1)},
			}},
		}
	default: // A |-> s_eventually B
		return &sva.PropImpl{
			S:       &sva.SeqExpr{E: randomCond(rng, 1)},
			Overlap: true,
			P: &sva.PropEventually{
				P:      &sva.PropSeq{S: &sva.SeqExpr{E: randomCond(rng, 1)}},
				Strong: true,
			},
		}
	}
}

func randomBoolProperty(rng *rand.Rand) sva.Property {
	return &sva.PropSeq{S: &sva.SeqExpr{E: randomCond(rng, 2)}}
}

// randomCond builds a random boolean combination of depth up to d.
func randomCond(rng *rand.Rand, d int) sva.Expr {
	if d <= 0 || rng.Intn(3) == 0 {
		return randomAtom(rng)
	}
	op := "&&"
	if rng.Intn(2) == 0 {
		op = "||"
	}
	return &sva.Binary{Op: op, X: randomCond(rng, d-1), Y: randomCond(rng, d-1)}
}

func randomAtom(rng *rand.Rand) sva.Expr {
	if rng.Intn(2) == 0 {
		s := &sva.Ident{Name: oneBit[rng.Intn(len(oneBit))]}
		if rng.Intn(3) == 0 {
			return &sva.Unary{Op: "!", X: s}
		}
		return s
	}
	s := &sva.Ident{Name: multiBit[rng.Intn(len(multiBit))]}
	switch rng.Intn(8) {
	case 0:
		return &sva.Unary{Op: "^", X: s}
	case 1:
		return &sva.Unary{Op: "&", X: s}
	case 2:
		return &sva.Unary{Op: "|", X: s}
	case 3:
		return &sva.Call{Name: "$onehot", Args: []sva.Expr{s}}
	case 4:
		return &sva.Call{Name: "$onehot0", Args: []sva.Expr{s}}
	case 5:
		n := uint64(rng.Intn(15))
		return &sva.Binary{Op: "==", X: s, Y: num(n)}
	case 6:
		n := uint64(rng.Intn(15))
		return &sva.Binary{Op: pick(rng, "!=", "<", "<="), X: s, Y: num(n)}
	default:
		t := &sva.Ident{Name: multiBit[rng.Intn(len(multiBit))]}
		if t.Name == s.Name {
			return &sva.Unary{Op: "|", X: s}
		}
		return &sva.Binary{Op: pick(rng, "==", "!="), X: s, Y: t}
	}
}

func num(v uint64) *sva.Num {
	return &sva.Num{Text: fmt.Sprintf("%d", v), Value: v}
}

func pick(rng *rand.Rand, opts ...string) string {
	return opts[rng.Intn(len(opts))]
}
