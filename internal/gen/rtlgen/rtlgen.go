// Package rtlgen generates the synthetic Design2SVA test instances:
// parameterized arithmetic pipelines and finite-state machines plus
// matching formal testbench headers, following the paper's §3.4 and
// Appendix C. Every generated design elaborates with package rtl, and
// the returned ground-truth structure lets evaluation harnesses and
// model proxies construct provable reference assertions.
package rtlgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// PipelineParams are the control parameters from Figure 4: number of
// execution units, total pipeline depth, data width, and the
// complexity (operator count) of each unit's combinational logic.
type PipelineParams struct {
	Units      int
	Depth      int // total depth, split across units
	Width      int
	Complexity int // operators per stage transform
	Seed       int64
}

// FSMParams control FSM generation: state count, transition (edge)
// count, input width, and condition complexity.
type FSMParams struct {
	States     int
	Edges      int
	Width      int
	Complexity int
	Seed       int64
}

// Instance is one generated test case.
type Instance struct {
	ID       string
	Kind     string // "pipeline" or "fsm"
	Design   string // DUT SystemVerilog
	Bench    string // testbench header SystemVerilog
	DUTTop   string
	BenchTop string

	// Ground truth for proxy models and reference checks.
	Pipeline *PipelineTruth
	FSM      *FSMTruth
}

// PipelineTruth describes the generated pipeline.
type PipelineTruth struct {
	Depth int
	Width int
}

// FSMTruth describes the generated FSM: successor sets per state.
type FSMTruth struct {
	NumStates  int
	StateWidth int
	Succ       map[int][]int // state -> possible next states
}

// Reachable returns the states reachable from the reset state S0, in
// BFS order. Assertions about unreachable states are vacuously proven,
// so evaluation harnesses and proxies restrict themselves to this set.
func (t *FSMTruth) Reachable() []int {
	seen := map[int]bool{0: true}
	order := []int{0}
	for i := 0; i < len(order); i++ {
		for _, nxt := range t.Succ[order[i]] {
			if !seen[nxt] {
				seen[nxt] = true
				order = append(order, nxt)
			}
		}
	}
	return order
}

// GeneratePipeline emits a pipeline design and testbench header.
func GeneratePipeline(p PipelineParams) *Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.Units < 1 {
		p.Units = 1
	}
	if p.Depth < p.Units {
		p.Depth = p.Units
	}
	// split depth across units
	depths := make([]int, p.Units)
	remaining := p.Depth
	for i := range depths {
		depths[i] = 1
		remaining--
	}
	for remaining > 0 {
		depths[rng.Intn(p.Units)]++
		remaining--
	}

	var b strings.Builder
	fmt.Fprintf(&b, "`define WIDTH %d\n`define DEPTH %d\n\n", p.Width, p.Depth)
	for u := 0; u < p.Units; u++ {
		fmt.Fprintf(&b, "module exec_unit_%d (\n  clk,\n  reset_,\n  in_data,\n  in_vld,\n  out_data,\n  out_vld\n);\n", u)
		fmt.Fprintf(&b, "parameter WIDTH = `WIDTH;\nlocalparam DEPTH = %d;\n", depths[u])
		b.WriteString("input clk;\ninput reset_;\n")
		b.WriteString("input [WIDTH-1:0] in_data;\ninput in_vld;\n")
		b.WriteString("output [WIDTH-1:0] out_data;\noutput out_vld;\n")
		b.WriteString("logic [DEPTH:0] ready;\nlogic [DEPTH:0][WIDTH-1:0] data;\n")
		b.WriteString("assign ready[0] = in_vld;\nassign data[0] = in_data;\n")
		b.WriteString("assign out_vld = ready[DEPTH];\nassign out_data = data[DEPTH];\n")
		b.WriteString("generate\nfor (genvar i=0; i < DEPTH; i=i+1) begin : gen\n")
		b.WriteString("  always @(posedge clk) begin\n")
		b.WriteString("    if (!reset_) begin\n      ready[i+1] <= 'd0;\n      data[i+1] <= 'd0;\n    end else begin\n")
		b.WriteString("      ready[i+1] <= ready[i];\n")
		fmt.Fprintf(&b, "      data[i+1] <= %s;\n", randomTransform(rng, "data[i]", p.Complexity))
		b.WriteString("    end\n  end\nend\nendgenerate\nendmodule\n\n")
	}
	// top pipeline chaining units
	b.WriteString("module pipeline (\n  clk,\n  reset_,\n  in_vld,\n  in_data,\n  out_vld,\n  out_data\n);\n")
	b.WriteString("parameter WIDTH=`WIDTH;\nparameter DEPTH=`DEPTH;\n")
	b.WriteString("input clk;\ninput reset_;\ninput in_vld;\ninput [WIDTH-1:0] in_data;\n")
	b.WriteString("output out_vld;\noutput [WIDTH-1:0] out_data;\n")
	b.WriteString("wire [DEPTH:0] ready;\nwire [DEPTH:0][WIDTH-1:0] data;\n")
	b.WriteString("assign ready[0] = in_vld;\nassign data[0] = in_data;\n")
	b.WriteString("assign out_vld = ready[DEPTH];\nassign out_data = data[DEPTH];\n")
	at := 0
	for u := 0; u < p.Units; u++ {
		nxt := at + depths[u]
		fmt.Fprintf(&b, "exec_unit_%d #(.WIDTH(WIDTH)) unit_%d (\n", u, u)
		b.WriteString("  .clk(clk),\n  .reset_(reset_),\n")
		fmt.Fprintf(&b, "  .in_data(data[%d]),\n  .in_vld(ready[%d]),\n", at, at)
		fmt.Fprintf(&b, "  .out_data(data[%d]),\n  .out_vld(ready[%d])\n);\n", nxt, nxt)
		at = nxt
	}
	b.WriteString("endmodule\n")

	bench := fmt.Sprintf("`define WIDTH %d\n`define DEPTH %d\n\n", p.Width, p.Depth) +
		`module pipeline_tb (
  clk,
  reset_,
  in_vld,
  in_data,
  out_vld,
  out_data
);
parameter WIDTH=` + "`WIDTH" + `;
parameter DEPTH=` + "`DEPTH" + `;
input clk;
input reset_;
input in_vld;
input [WIDTH-1:0] in_data;
input out_vld;
input [WIDTH-1:0] out_data;
wire tb_reset;
assign tb_reset = (reset_ == 1'b0);
endmodule
`
	return &Instance{
		ID:       fmt.Sprintf("pipeline_nu_%d_dp_%d_wd_%d_cx_%d_%d", p.Units, p.Depth, p.Width, p.Complexity, p.Seed),
		Kind:     "pipeline",
		Design:   b.String(),
		Bench:    bench,
		DUTTop:   "pipeline",
		BenchTop: "pipeline_tb",
		Pipeline: &PipelineTruth{Depth: p.Depth, Width: p.Width},
	}
}

// randomTransform builds a random arithmetic/logic expression over the
// input term, as in the paper's execution-unit bodies.
func randomTransform(rng *rand.Rand, term string, complexity int) string {
	ops := []string{"^", "+", "-", "&", "|"}
	shifts := []string{"<<<", ">>>", ">>"}
	expr := term
	if complexity < 1 {
		complexity = 1
	}
	for i := 0; i < complexity; i++ {
		c := rng.Intn(10)
		switch rng.Intn(4) {
		case 0:
			expr = fmt.Sprintf("(%s %s %d)", expr, ops[rng.Intn(len(ops))], c)
		case 1:
			expr = fmt.Sprintf("(%s %s %d)", expr, shifts[rng.Intn(len(shifts))], 1+rng.Intn(7))
		case 2:
			expr = fmt.Sprintf("((%s %s %d) %s (%s %s %d))",
				term, ops[rng.Intn(len(ops))], c,
				ops[rng.Intn(len(ops))],
				expr, ops[rng.Intn(len(ops))], rng.Intn(10))
		default:
			expr = fmt.Sprintf("(%s %s (%s %s %d))",
				expr, ops[rng.Intn(len(ops))], term, shifts[rng.Intn(len(shifts))], 1+rng.Intn(7))
		}
	}
	return expr
}

// GenerateFSM emits an FSM design and testbench header.
func GenerateFSM(p FSMParams) *Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.States < 2 {
		p.States = 2
	}
	sw := 1
	for (1 << uint(sw)) < p.States {
		sw++
	}
	inputs := []string{"in_A", "in_B", "in_C", "in_D"}

	// Build a transition structure: every state gets at least one
	// successor; extra edges add conditional branches.
	succ := map[int][]int{}
	for s := 0; s < p.States; s++ {
		succ[s] = []int{rng.Intn(p.States)}
	}
	extra := p.Edges - p.States
	for extra > 0 {
		s := rng.Intn(p.States)
		t := rng.Intn(p.States)
		if len(succ[s]) < 3 && !contains(succ[s], t) {
			succ[s] = append(succ[s], t)
			extra--
			continue
		}
		extra--
	}

	var b strings.Builder
	fmt.Fprintf(&b, "`define WIDTH %d\n\n", p.Width)
	b.WriteString("module fsm(\n  clk,\n  reset_,\n  in_A,\n  in_B,\n  in_C,\n  in_D,\n  fsm_out\n);\n")
	fmt.Fprintf(&b, "parameter WIDTH = `WIDTH;\nparameter FSM_WIDTH = %d;\n", sw)
	for s := 0; s < p.States; s++ {
		fmt.Fprintf(&b, "parameter S%d = %d'd%d;\n", s, sw, s)
	}
	b.WriteString("input clk;\ninput reset_;\n")
	for _, in := range inputs {
		fmt.Fprintf(&b, "input [WIDTH-1:0] %s;\n", in)
	}
	b.WriteString("output reg [FSM_WIDTH-1:0] fsm_out;\n")
	b.WriteString("reg [FSM_WIDTH-1:0] state, next_state;\n")
	b.WriteString("always_ff @(posedge clk or negedge reset_) begin\n")
	b.WriteString("  if (!reset_) begin\n    state <= S0;\n  end else begin\n    state <= next_state;\n  end\nend\n")
	b.WriteString("always_comb begin\n  case(state)\n")
	for s := 0; s < p.States; s++ {
		targets := succ[s]
		fmt.Fprintf(&b, "    S%d: begin\n", s)
		switch len(targets) {
		case 1:
			fmt.Fprintf(&b, "      next_state = S%d;\n", targets[0])
		case 2:
			fmt.Fprintf(&b, "      if (%s) begin\n        next_state = S%d;\n      end else begin\n        next_state = S%d;\n      end\n",
				randomCond(rng, inputs, p.Complexity), targets[0], targets[1])
		default:
			fmt.Fprintf(&b, "      if (%s) begin\n        next_state = S%d;\n      end\n",
				randomCond(rng, inputs, p.Complexity), targets[0])
			fmt.Fprintf(&b, "      else if (%s) begin\n        next_state = S%d;\n      end\n",
				randomCond(rng, inputs, p.Complexity), targets[1])
			fmt.Fprintf(&b, "      else begin\n        next_state = S%d;\n      end\n", targets[2])
		}
		b.WriteString("    end\n")
	}
	b.WriteString("    default: begin\n      next_state = S0;\n    end\n")
	b.WriteString("  endcase\nend\n")
	b.WriteString("always_comb begin\n  fsm_out = state;\nend\n")
	b.WriteString("endmodule\n")

	var tb strings.Builder
	fmt.Fprintf(&tb, "`define WIDTH %d\n\n", p.Width)
	tb.WriteString("module fsm_tb(\n  clk,\n  reset_,\n  in_A,\n  in_B,\n  in_C,\n  in_D,\n  fsm_out\n);\n")
	fmt.Fprintf(&tb, "parameter WIDTH = `WIDTH;\nparameter FSM_WIDTH = %d;\n", sw)
	for s := 0; s < p.States; s++ {
		fmt.Fprintf(&tb, "parameter S%d = %d'd%d;\n", s, sw, s)
	}
	tb.WriteString("input clk;\ninput reset_;\n")
	for _, in := range inputs {
		fmt.Fprintf(&tb, "input [WIDTH-1:0] %s;\n", in)
	}
	tb.WriteString("input reg [FSM_WIDTH-1:0] fsm_out;\n")
	tb.WriteString("wire tb_reset;\nassign tb_reset = (reset_ == 1'b0);\n")
	tb.WriteString("endmodule\n")

	return &Instance{
		ID:       fmt.Sprintf("fsm_ni_4_nn_%d_ne_%d_wd_%d_cx_%d_%d", p.States, p.Edges, p.Width, p.Complexity, p.Seed),
		Kind:     "fsm",
		Design:   b.String(),
		Bench:    tb.String(),
		DUTTop:   "fsm",
		BenchTop: "fsm_tb",
		FSM:      &FSMTruth{NumStates: p.States, StateWidth: sw, Succ: succ},
	}
}

func randomCond(rng *rand.Rand, inputs []string, complexity int) string {
	atom := func() string {
		a := inputs[rng.Intn(len(inputs))]
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("(%s == 'd%d)", a, rng.Intn(4))
		case 1:
			return fmt.Sprintf("(%s != %s)", a, inputs[rng.Intn(len(inputs))])
		case 2:
			return fmt.Sprintf("(%s <= 'd%d)", a, rng.Intn(8))
		case 3:
			return fmt.Sprintf("(|%s)", a)
		default:
			return fmt.Sprintf("(%s[%d])", a, rng.Intn(4))
		}
	}
	expr := atom()
	for i := 1; i < complexity; i++ {
		op := "&&"
		if rng.Intn(2) == 0 {
			op = "||"
		}
		expr = fmt.Sprintf("(%s %s %s)", expr, op, atom())
	}
	return expr
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Sweep96 returns the benchmark's 96-instance controlled parameter
// sweep for the given category ("pipeline" or "fsm"). The sweep varies
// every Figure-4 control parameter so instance difficulty spans a wide
// range.
func Sweep96(kind string) []*Instance {
	var out []*Instance
	switch kind {
	case "pipeline":
		units := []int{1, 2}
		depths := []int{3, 4, 6, 8}
		widths := []int{4, 8, 16, 32}
		complexities := []int{1, 3, 6}
		seed := int64(1000)
		for _, u := range units {
			for _, d := range depths {
				for _, w := range widths {
					for _, c := range complexities {
						out = append(out, GeneratePipeline(PipelineParams{
							Units: u, Depth: d, Width: w, Complexity: c, Seed: seed,
						}))
						seed++
					}
				}
			}
		}
	case "fsm":
		states := []int{2, 4, 6, 8}
		edgeFactors := []int{1, 2}
		widths := []int{8, 16, 32}
		complexities := []int{1, 2, 4, 6}
		seed := int64(2000)
		for _, st := range states {
			for _, ef := range edgeFactors {
				for _, w := range widths {
					for _, c := range complexities {
						out = append(out, GenerateFSM(FSMParams{
							States: st, Edges: st * ef, Width: w, Complexity: c, Seed: seed,
						}))
						seed++
					}
				}
			}
		}
	}
	return out
}
