package rtlgen

import (
	"testing"

	"fveval/internal/rtl"
)

func TestSweepSizes(t *testing.T) {
	for _, kind := range []string{"pipeline", "fsm"} {
		insts := Sweep96(kind)
		if len(insts) != 96 {
			t.Fatalf("%s sweep: %d instances, want 96", kind, len(insts))
		}
		ids := map[string]bool{}
		for _, in := range insts {
			if ids[in.ID] {
				t.Fatalf("duplicate instance id %s", in.ID)
			}
			ids[in.ID] = true
		}
	}
}

func TestGeneratedDesignsElaborate(t *testing.T) {
	// Every generated design and its bound testbench must parse and
	// elaborate.
	for _, kind := range []string{"pipeline", "fsm"} {
		insts := Sweep96(kind)
		for i, inst := range insts {
			if i%7 != 0 && !testing.Short() {
				// full check is run in the benchmark harness; sample
				// here for speed
			}
			if i%7 != 0 {
				continue
			}
			f, err := rtl.Parse(inst.Design + "\n" + inst.Bench)
			if err != nil {
				t.Fatalf("%s: parse: %v", inst.ID, err)
			}
			sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
			if err != nil {
				t.Fatalf("%s: elaborate: %v", inst.ID, err)
			}
			if len(sys.Regs) == 0 {
				t.Fatalf("%s: no registers", inst.ID)
			}
		}
	}
}

func TestPipelineTruthMatchesBehavior(t *testing.T) {
	inst := GeneratePipeline(PipelineParams{Units: 2, Depth: 4, Width: 8, Complexity: 2, Seed: 7})
	f, err := rtl.Parse(inst.Design)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "pipeline", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := rtl.NewInterp(sys)
	push := map[string]uint64{"reset_": 1, "in_vld": 1, "in_data": 3}
	idle := map[string]uint64{"reset_": 1}
	vals, err := in.Step(push)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < inst.Pipeline.Depth; i++ {
		vals, err = in.Step(idle)
		if err != nil {
			t.Fatal(err)
		}
		if vals["out_vld"] != 0 {
			t.Fatalf("out_vld early at cycle %d", i)
		}
	}
	vals, err = in.Step(idle)
	if err != nil {
		t.Fatal(err)
	}
	if vals["out_vld"] != 1 {
		t.Fatalf("out_vld must assert after %d cycles", inst.Pipeline.Depth)
	}
}

func TestFSMTruthMatchesBehavior(t *testing.T) {
	inst := GenerateFSM(FSMParams{States: 4, Edges: 8, Width: 8, Complexity: 2, Seed: 11})
	f, err := rtl.Parse(inst.Design)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := rtl.Elaborate(f, "fsm", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := rtl.NewInterp(sys)
	// run random-ish inputs; every observed transition must be in the
	// ground-truth successor sets.
	cur := uint64(0)
	step := map[string]uint64{"reset_": 1}
	for i := 0; i < 50; i++ {
		step["in_A"] = uint64(i * 3 % 17)
		step["in_B"] = uint64(i * 5 % 13)
		step["in_C"] = uint64(i % 7)
		step["in_D"] = uint64(i % 2)
		vals, err := in.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		got := vals["state"]
		if i > 0 {
			if !contains(inst.FSM.Succ[int(cur)], int(got)) && got != cur {
				// got must be a declared successor (or a hold via
				// incomplete branches, which this generator never
				// emits)
				t.Fatalf("transition %d -> %d not in truth table %v",
					cur, got, inst.FSM.Succ[int(cur)])
			}
		}
		cur = got
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateFSM(FSMParams{States: 4, Edges: 6, Width: 16, Complexity: 3, Seed: 42})
	b := GenerateFSM(FSMParams{States: 4, Edges: 6, Width: 16, Complexity: 3, Seed: 42})
	if a.Design != b.Design || a.Bench != b.Bench {
		t.Fatalf("generation must be deterministic per seed")
	}
	c := GenerateFSM(FSMParams{States: 4, Edges: 6, Width: 16, Complexity: 3, Seed: 43})
	if a.Design == c.Design {
		t.Fatalf("different seeds must differ")
	}
}
