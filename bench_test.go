package fveval

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper (DESIGN.md §5), plus ablation benches for the design
// choices called out in DESIGN.md §6. Each benchmark regenerates its
// artifact at full size; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured values.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"fveval/internal/core"
	"fveval/internal/dist"
	"fveval/internal/engine"
	"fveval/internal/equiv"
	"fveval/internal/formal"
	"fveval/internal/gen/rtlgen"
	"fveval/internal/gen/svagen"
	"fveval/internal/llm"
	"fveval/internal/ltl"
	"fveval/internal/mc"
	"fveval/internal/rtl"
	"fveval/internal/sva"
	"fveval/internal/task"
)

// isolate shields a benchmark from its predecessors' process state:
// the full suite runs dozens of table regenerations in one process,
// and without a boundary a benchmark's measured time varies with the
// previous one's leftovers — retained memo ASTs inflating every GC
// mark phase, warm caches turning later benchmarks into partial
// reruns. Each benchmark measures a cold, collected process.
func isolate(b *testing.B) {
	core.ResetMemos()
	svagen.ResetCache()
	runtime.GC()
	b.ResetTimer()
}

// reportPrefilter attaches the simulation-prefilter hit rate (share of
// formal decision points discharged without a SAT call) as a benchmark
// metric, so BENCH_tables.json (schema v4) tracks it next to ns/op.
func reportPrefilter(b *testing.B, snaps ...formal.Snapshot) {
	var refuted, solves int64
	for _, s := range snaps {
		refuted += s.Sim.Refutations
		solves += s.Solves
	}
	if refuted+solves > 0 {
		b.ReportMetric(float64(refuted)/float64(refuted+solves), "prefilter-hit-rate")
	}
}

func BenchmarkTable1NL2SVAHuman(b *testing.B) {
	isolate(b)
	for i := 0; i < b.N; i++ {
		reports, err := engine.RunNL2SVAHuman(llm.Models(), engine.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + core.FormatTable1(reports))
		}
	}
}

func BenchmarkTable2HumanPassK(b *testing.B) {
	models := []llm.Model{
		llm.ModelByName("gpt-4o"),
		llm.ModelByName("gemini-1.5-flash"),
		llm.ModelByName("llama-3.1-70b"),
	}
	isolate(b)
	for i := 0; i < b.N; i++ {
		reports, err := engine.RunNL2SVAHumanPassK(models, []int{1, 3, 5}, engine.Config{Samples: 5, Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + core.FormatTable2(reports))
		}
	}
}

func BenchmarkTable3NL2SVAMachine(b *testing.B) {
	ctx := context.Background()
	var snaps []formal.Snapshot
	isolate(b)
	for i := 0; i < b.N; i++ {
		e0 := engine.New(engine.Config{})
		zero, err := e0.NL2SVAMachine(ctx, llm.Models(), 0, 300, nil)
		if err != nil {
			b.Fatal(err)
		}
		e3 := engine.New(engine.Config{})
		three, err := e3.NL2SVAMachine(ctx, llm.Models(), 3, 300, nil)
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, e0.FormalStats(), e3.FormalStats())
		if i == 0 {
			b.Log("\n" + core.FormatTable3(zero, three))
		}
	}
	reportPrefilter(b, snaps...)
}

func BenchmarkTable4MachinePassK(b *testing.B) {
	models := []llm.Model{
		llm.ModelByName("gpt-4o"),
		llm.ModelByName("gemini-1.5-flash"),
		llm.ModelByName("llama-3.1-70b"),
	}
	ctx := context.Background()
	var snaps []formal.Snapshot
	isolate(b)
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Config{Samples: 5, Workers: 8})
		reports, err := eng.NL2SVAMachinePassK(ctx, models, []int{1, 3, 5}, 300, nil)
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, eng.FormalStats())
		if i == 0 {
			b.Log("\n" + core.FormatTable4(reports))
		}
	}
	reportPrefilter(b, snaps...)
}

func BenchmarkTable5Design2SVA(b *testing.B) {
	ctx := context.Background()
	var snaps []formal.Snapshot
	isolate(b)
	for i := 0; i < b.N; i++ {
		ep := engine.New(engine.Config{Samples: 5})
		pipe, err := ep.Design2SVA(ctx, llm.DesignModels(), "pipeline", nil)
		if err != nil {
			b.Fatal(err)
		}
		ef := engine.New(engine.Config{Samples: 5})
		fsm, err := ef.Design2SVA(ctx, llm.DesignModels(), "fsm", nil)
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, ep.FormalStats(), ef.FormalStats())
		if i == 0 {
			b.Log("\n" + core.FormatTable5(pipe, fsm))
		}
	}
	reportPrefilter(b, snaps...)
}

func BenchmarkTable6DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := core.FormatTable6()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure2HumanLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := core.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure3MachineLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := core.Figure3(300)
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure4RTLLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := core.Figure4()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFigure6BLEUCorrelation(b *testing.B) {
	models := []llm.Model{
		llm.ModelByName("gpt-4o"),
		llm.ModelByName("llama-3.1-70b"),
	}
	isolate(b)
	for i := 0; i < b.N; i++ {
		out, err := engine.New(engine.Config{}).Figure6(context.Background(), models, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTableAGR regenerates the AGR helper-generation table at
// full size: the whole helpergen sweep, sampled decoding, pass@k
// fleet (DESIGN.md §12).
func BenchmarkTableAGR(b *testing.B) {
	ctx := context.Background()
	var snaps []formal.Snapshot
	isolate(b)
	for i := 0; i < b.N; i++ {
		e := task.NewEngine(engine.Config{Samples: 5, Workers: 8})
		run, err := e.Run(ctx, task.Request{Task: "agr"})
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, e.FormalStats())
		if i == 0 {
			b.Log("\n" + run.Report.Render())
		}
	}
	reportPrefilter(b, snaps...)
}

// BenchmarkFigureR regenerates the CEX-guided refinement figure at
// its default retry budgets and reports the refinement rounds spent
// per regeneration as a custom metric, so BENCH_tables.json tracks
// feedback-loop traffic next to ns/op.
func BenchmarkFigureR(b *testing.B) {
	ctx := context.Background()
	var rounds int64
	isolate(b)
	for i := 0; i < b.N; i++ {
		e := task.NewEngine(engine.Config{Samples: 5, Workers: 8})
		run, err := e.Run(ctx, task.Request{Task: "refinement"})
		if err != nil {
			b.Fatal(err)
		}
		rounds += run.Stats.RefineRounds
		if i == 0 {
			b.Log("\n" + run.Report.Render())
		}
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "refine-rounds")
}

// ---- Distributed layer (DESIGN.md §9) ----------------------------------

// benchDist runs one registry task through the coordinator over a
// loopback fleet; sub-benchmark names carry the fleet shape
// ("shards=N/workers=N"), which benchjson records next to ns/op so
// BENCH_tables.json tracks distributed speedups.
func benchDist(b *testing.B, req task.Request, fleets []int) {
	b.Helper()
	for _, n := range fleets {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := dist.New(dist.Loopback(n, engine.Config{}), dist.Options{Shards: n})
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Log("\n" + res.Run.Report.Render())
				}
			}
		})
	}
}

// BenchmarkDistTable1 fans the Table 1 grid across loopback fleets.
func BenchmarkDistTable1(b *testing.B) {
	benchDist(b, task.Request{Task: "nl2sva-human"}, []int{2, 4})
}

// BenchmarkDistTable4 fans the heaviest pass@k grid (Table 4) across
// loopback fleets.
func BenchmarkDistTable4(b *testing.B) {
	benchDist(b, task.Request{
		Task:    "nl2sva-machine-passk",
		Options: engine.Config{Samples: 5, Workers: 8},
	}, []int{2, 4})
}

// ---- Ablations (DESIGN.md §6) ------------------------------------------

// BenchmarkAblationEquivBound sweeps the lasso bound K on a liveness
// equivalence pair: larger bounds increase confidence and cost.
func BenchmarkAblationEquivBound(b *testing.B) {
	a1, _ := sva.ParseAssertion(`assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));`)
	a2, _ := sva.ParseAssertion(`assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[1:$] rd_pop));`)
	sigs := &equiv.Sigs{Widths: map[string]int{"clk": 1, "tb_reset": 1, "wr_push": 1, "rd_pop": 1}}
	for _, bound := range []int{8, 12, 16, 20} {
		b.Run("K="+itoa(bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := equiv.Check(a1, a2, sigs, equiv.Options{Bound: bound})
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict != equiv.BImpliesA {
					b.Fatalf("verdict drifted at K=%d: %v", bound, res.Verdict)
				}
			}
		})
	}
}

// BenchmarkAblationInduction compares k-induction proofs against pure
// BMC falsification effort on Design2SVA ground-truth assertions.
func BenchmarkAblationInduction(b *testing.B) {
	inst := rtlgen.GenerateFSM(rtlgen.FSMParams{States: 6, Edges: 10, Width: 16, Complexity: 3, Seed: 77})
	f, err := rtl.Parse(inst.Design + "\n" + inst.Bench)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := rtl.ElaborateBound(f, inst.DUTTop, inst.BenchTop, nil)
	if err != nil {
		b.Fatal(err)
	}
	succ := inst.FSM.Succ[0]
	body := "fsm_out == S0 |=> ("
	for i, t := range succ {
		if i > 0 {
			body += " || "
		}
		body += "fsm_out == S" + itoa(t)
	}
	body += ")"
	a, err := sva.ParseAssertion("assert property (@(posedge clk) disable iff (tb_reset) " + body + ");")
	if err != nil {
		b.Fatal(err)
	}
	for _, maxInd := range []int{2, 5, 10} {
		b.Run("k="+itoa(maxInd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mc.CheckAssertion(sys, a, mc.Options{MaxInduction: maxInd})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != mc.Proven {
					b.Fatalf("expected proven, got %v", res.Status)
				}
			}
		})
	}
}

// BenchmarkAblationCritic measures the naturalizer critic retry loop:
// dataset generation with the critic enabled (shipping quality) versus
// raw single-shot rendering.
func BenchmarkAblationCritic(b *testing.B) {
	b.Run("with-critic", func(b *testing.B) {
		isolate(b)
		for i := 0; i < b.N; i++ {
			// Measure real generation: the process-wide dataset cache
			// would otherwise turn every iteration into a map walk.
			svagen.ResetCache()
			retries := 0
			for _, inst := range svagen.Dataset(100) {
				retries += inst.Retries
			}
			if i == 0 {
				b.Logf("total retries across 100 instances: %d", retries)
			}
		}
	})
}

// BenchmarkAblationFeedback measures the §6 future-work extension: a
// tool-feedback refinement loop around a weak model, comparing syntax
// pass rates with and without retries.
func BenchmarkAblationFeedback(b *testing.B) {
	base := llm.ModelByName("llama-3-8b")
	wrapped := &llm.FeedbackModel{
		Base: base,
		Check: func(_ *llm.Prompt, resp string) error {
			return sva.CheckSyntax(llm.ExtractCode(resp))
		},
		MaxRetries: 2,
	}
	for _, cfg := range []struct {
		name  string
		model llm.Model
	}{{"base", base}, {"with-feedback", wrapped}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reports, err := engine.RunNL2SVAHuman([]llm.Model{cfg.model}, engine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: syntax=%.3f func=%.3f", cfg.model.Name(),
						reports[0].Syntax, reports[0].Func)
				}
			}
		})
	}
}

// BenchmarkAblationLoweringDepth measures SVA lowering and formula
// depth computation across the machine dataset (parser+lowering
// throughput).
func BenchmarkAblationLoweringDepth(b *testing.B) {
	insts := svagen.Dataset(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, inst := range insts {
			f, err := ltl.LowerAssertion(inst.Reference)
			if err != nil {
				b.Fatal(err)
			}
			_ = ltl.Depth(f)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
