// Command equivcheck decides the formal relationship between two SVA
// assertions over free signals — a standalone front end to the custom
// equivalence function the benchmark uses for its Func/Partial
// metrics.
//
// Usage:
//
//	equivcheck -a 'assert property (@(posedge clk) x |-> ##1 y);' \
//	           -b 'assert property (@(posedge clk) x |=> y);' \
//	           -sig x:1 -sig y:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fveval/internal/equiv"
	"fveval/internal/ltl"
	"fveval/internal/sva"
)

type sigList map[string]int

func (s sigList) String() string { return fmt.Sprint(map[string]int(s)) }

func (s sigList) Set(v string) error {
	parts := strings.SplitN(v, ":", 2)
	w := 1
	if len(parts) == 2 {
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		w = n
	}
	s[parts[0]] = w
	return nil
}

func main() {
	aSrc := flag.String("a", "", "first assertion source")
	bSrc := flag.String("b", "", "second assertion source")
	sigs := sigList{"clk": 1, "tb_reset": 1}
	flag.Var(sigs, "sig", "signal declaration name:width (repeatable)")
	flag.Parse()
	if *aSrc == "" || *bSrc == "" {
		flag.Usage()
		os.Exit(2)
	}
	a, err := sva.ParseAssertion(*aSrc)
	fatalIf(err, "assertion A")
	fatalIf(sva.Validate(a), "assertion A")
	b, err := sva.ParseAssertion(*bSrc)
	fatalIf(err, "assertion B")
	fatalIf(sva.Validate(b), "assertion B")

	env := &equiv.Sigs{Widths: sigs, Consts: map[string]ltl.ConstVal{}}
	res, err := equiv.Check(a, b, env, equiv.Options{})
	fatalIf(err, "check")
	fmt.Printf("verdict: %s (lasso bound %d)\n", res.Verdict, res.Bound)
	if res.AB != nil {
		fmt.Printf("\nwitness for A and not B:\n%s", res.AB)
	}
	if res.BA != nil {
		fmt.Printf("\nwitness for B and not A:\n%s", res.BA)
	}
}

func fatalIf(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "equivcheck: %s: %v\n", what, err)
		os.Exit(1)
	}
}
