// Command svagen emits NL2SVA-Machine test instances: random SVA
// assertions with critic-validated natural-language descriptions.
package main

import (
	"flag"
	"fmt"

	"fveval/internal/gen/svagen"
)

func main() {
	count := flag.Int("count", 10, "number of instances")
	flag.Parse()
	for _, inst := range svagen.Dataset(*count) {
		fmt.Printf("# %s (retries: %d)\n", inst.ID, inst.Retries)
		fmt.Printf("NL: %s\n", inst.NL)
		fmt.Printf("Reference:\n%s\n\n", inst.Reference)
	}
}
