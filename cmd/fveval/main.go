// Command fveval runs the FVEval benchmark end to end: every table and
// figure of the paper regenerates from one invocation, and any entry
// of the task registry can be run by name. All runs share one
// evaluation engine, so duplicate formal equivalence checks are
// solved once per process.
//
// Usage:
//
//	fveval -list                  # show the task registry
//	fveval -task nl2sva-human     # run a task by registry name
//	fveval -task design2sva -json # emit the unified run JSON
//	fveval -table 1               # registry task for Table 1
//	fveval -table 3 -count 300
//	fveval -figure 6
//	fveval -all -limit 20         # everything, truncated for a quick look
//	fveval -table 4 -workers 8 -shard 0/4   # first of four horizontal shards
//	fveval -table 2 -cache=false            # disable the equivalence memo
//	fveval -table 2 -maxbound 12            # cap the formal bound ramp
//	fveval -table 3 -simpatterns 0          # disable the simulation prefilter
//	fveval -table 5 -simpatterns 256        # more refute-before-solve patterns
//
// A sharded invocation emits the partial-report JSON wire shape
// (-json is implied): raw outcome grids with slot provenance instead
// of an unmergeable partial table. Collect all n shards' outputs and
// recombine them with task.MergeReports (or run the whole thing under
// cmd/fvevalctl, which does the fan-out and merge for you); the merged
// report is byte-identical to an unsharded run.
//
// Solver-reuse and ramp statistics from the incremental formal
// backend print to stderr next to the cache statistics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fveval/internal/engine"
	"fveval/internal/task"
)

func main() {
	taskName := flag.String("task", "", "registry task to run (see -list)")
	list := flag.Bool("list", false, "list the task registry and exit")
	jsonOut := flag.Bool("json", false, "emit the unified run JSON instead of the rendered table")
	table := flag.Int("table", 0, "table number to regenerate (1-6)")
	figure := flag.Int("figure", 0, "figure number to regenerate (2, 3, 4, 6)")
	all := flag.Bool("all", false, "run every table and figure")
	limit := flag.Int("limit", 0, "truncate instance lists (0 = full size)")
	count := flag.Int("count", 0, "NL2SVA-Machine dataset size (0 = task default, 300)")
	samples := flag.Int("samples", 5, "samples per instance for pass@k runs")
	workers := flag.Int("workers", 0, "evaluation parallelism (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "evaluate one instance slice, as i/n (e.g. 0/4), and emit mergeable partial-report JSON; combine n processes to cover a run")
	cache := flag.Bool("cache", true, "memoize formal equivalence checks across the run")
	maxBound := flag.Int("maxbound", 0, "cap for the formal backend's bound ramp: lasso bound for equivalence, BMC depth for model checking (0 = defaults, 16 each)")
	budget := flag.Int64("budget", 0, "SAT conflict budget per formal query (0 = default 200000)")
	simPatterns := flag.Int("simpatterns", 128, "bit-parallel simulation patterns the refute-before-solve prefilter evaluates per formal query (rounded up to 64-lane rounds; 0 disables the prefilter)")
	flag.Parse()

	if *list {
		printRegistry()
		return
	}

	shardSpec, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(2)
	}
	cfg := engine.Config{
		Limit:       *limit,
		Samples:     *samples,
		Budget:      *budget,
		MaxBound:    *maxBound,
		Workers:     *workers,
		Shard:       shardSpec,
		NoCache:     !*cache,
		SimPatterns: *simPatterns,
		NoSim:       *simPatterns == 0,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(2)
	}
	eng := task.NewEngine(cfg)
	if err := run(eng, *taskName, *table, *figure, *all, *count, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(1)
	}
	if st := eng.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintln(os.Stderr, st)
	}
	if fs := eng.FormalStats(); fs.Queries > 0 {
		fmt.Fprintln(os.Stderr, fs)
		fmt.Fprintln(os.Stderr, fs.Sim)
	}
}

func printRegistry() {
	fmt.Printf("%-24s %-8s %-8s %s\n", "Task", "Paper", "Kind", "Title")
	for _, s := range task.Tasks() {
		paper := ""
		switch {
		case s.Table > 0:
			paper = fmt.Sprintf("table %d", s.Table)
		case s.Figure > 0:
			paper = fmt.Sprintf("fig. %d", s.Figure)
		}
		fmt.Printf("%-24s %-8s %-8s %s\n", s.Name, paper, s.Kind, s.Title)
	}
}

// parseShard reads an "i/n" spec; empty means no sharding.
func parseShard(s string) (engine.Shard, error) {
	if s == "" {
		return engine.Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return engine.Shard{}, fmt.Errorf("shard %q: want i/n", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return engine.Shard{}, fmt.Errorf("shard %q: want integer i/n", s)
	}
	sh := engine.Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return engine.Shard{}, err
	}
	return sh, nil
}

func run(eng *task.Engine, taskName string, table, figure int, all bool, count int, jsonOut bool) error {
	if taskName != "" {
		return runTask(eng, taskName, count, jsonOut, true)
	}
	if all {
		// In -all mode -count applies only to the tasks that take it.
		for _, t := range []int{6, 1, 2, 3, 4, 5} {
			spec, err := task.ByTable(t)
			if err != nil {
				return err
			}
			if err := runTask(eng, spec.Name, count, jsonOut, false); err != nil {
				return err
			}
		}
		for _, f := range []int{2, 3, 4, 6} {
			spec, err := task.ByFigure(f)
			if err != nil {
				return err
			}
			if err := runTask(eng, spec.Name, count, jsonOut, false); err != nil {
				return err
			}
		}
		return nil
	}
	if table > 0 {
		spec, err := task.ByTable(table)
		if err != nil {
			return err
		}
		return runTask(eng, spec.Name, count, jsonOut, true)
	}
	if figure > 0 {
		spec, err := task.ByFigure(figure)
		if err != nil {
			return err
		}
		return runTask(eng, spec.Name, count, jsonOut, true)
	}
	flag.Usage()
	return nil
}

// runTask executes one registry task on the shared engine and prints
// either the paper-layout rendering or the unified run JSON. When the
// task was named explicitly, an inapplicable -count is an error (the
// registry contract: unaccepted overrides are rejected, not ignored).
func runTask(eng *task.Engine, name string, count int, jsonOut, explicit bool) error {
	spec, err := task.Lookup(name)
	if err != nil {
		return err
	}
	acceptsCount := false
	for _, f := range spec.Accepts {
		if f == "count" {
			acceptsCount = true
		}
	}
	var p task.Params
	if count > 0 {
		if !acceptsCount {
			if explicit {
				return fmt.Errorf("task %s does not accept -count", spec.Name)
			}
		} else {
			p.Count = count
		}
	}
	req := task.Request{Task: spec.Name, Params: p}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if eng.Config().Shard.Enabled() {
		// A shard's aggregated table cannot be recombined; emit the
		// partial-report wire shape instead (-json implied) so shards
		// stay composable via task.MergeReports.
		partial, err := eng.RunPartial(context.Background(), req)
		if err != nil {
			return err
		}
		return enc.Encode(partial)
	}
	run, err := eng.Run(context.Background(), req)
	if err != nil {
		return err
	}
	if jsonOut {
		return enc.Encode(run)
	}
	fmt.Println(run.Report.Render())
	return nil
}
