// Command fveval runs the FVEval benchmark end to end: every table and
// figure of the paper regenerates from one invocation.
//
// Usage:
//
//	fveval -table 1          # NL2SVA-Human greedy (Table 1)
//	fveval -table 3 -count 300
//	fveval -figure 6
//	fveval -all -limit 20    # everything, truncated for a quick look
package main

import (
	"flag"
	"fmt"
	"os"

	"fveval/internal/core"
	"fveval/internal/llm"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-6)")
	figure := flag.Int("figure", 0, "figure number to regenerate (2, 3, 4, 6)")
	all := flag.Bool("all", false, "run every table and figure")
	limit := flag.Int("limit", 0, "truncate instance lists (0 = full size)")
	count := flag.Int("count", 300, "NL2SVA-Machine dataset size")
	samples := flag.Int("samples", 5, "samples per instance for pass@k runs")
	workers := flag.Int("workers", 0, "evaluation parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	opt := core.Options{Limit: *limit, Samples: *samples, Workers: *workers}
	if err := run(*table, *figure, *all, *count, opt); err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(1)
	}
}

func run(table, figure int, all bool, count int, opt core.Options) error {
	if all {
		for _, t := range []int{6, 1, 2, 3, 4, 5} {
			if err := runTable(t, count, opt); err != nil {
				return err
			}
		}
		for _, f := range []int{2, 3, 4, 6} {
			if err := runFigure(f, count, opt); err != nil {
				return err
			}
		}
		return nil
	}
	if table > 0 {
		return runTable(table, count, opt)
	}
	if figure > 0 {
		return runFigure(figure, count, opt)
	}
	flag.Usage()
	return nil
}

func runTable(table, count int, opt core.Options) error {
	switch table {
	case 1:
		reports, err := core.RunNL2SVAHuman(llm.Models(), opt)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable1(reports))
	case 2:
		models := pick("gpt-4o", "gemini-1.5-flash", "llama-3.1-70b")
		reports, err := core.RunNL2SVAHumanPassK(models, []int{1, 3, 5}, opt)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable2(reports))
	case 3:
		zero, err := core.RunNL2SVAMachine(llm.Models(), 0, count, opt)
		if err != nil {
			return err
		}
		three, err := core.RunNL2SVAMachine(llm.Models(), 3, count, opt)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable3(zero, three))
	case 4:
		models := pick("gpt-4o", "gemini-1.5-flash", "llama-3.1-70b")
		reports, err := core.RunNL2SVAMachinePassK(models, []int{1, 3, 5}, count, opt)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable4(reports))
	case 5:
		pipe, err := core.RunDesign2SVA(llm.DesignModels(), "pipeline", opt)
		if err != nil {
			return err
		}
		fsm, err := core.RunDesign2SVA(llm.DesignModels(), "fsm", opt)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable5(pipe, fsm))
	case 6:
		fmt.Println(core.FormatTable6())
	default:
		return fmt.Errorf("unknown table %d", table)
	}
	return nil
}

func runFigure(figure, count int, opt core.Options) error {
	switch figure {
	case 2:
		s, err := core.Figure2()
		if err != nil {
			return err
		}
		fmt.Println(s)
	case 3:
		fmt.Println(core.Figure3(count))
	case 4:
		fmt.Println(core.Figure4())
	case 6:
		s, err := core.Figure6(pick("gpt-4o", "llama-3.1-70b"), opt)
		if err != nil {
			return err
		}
		fmt.Println(s)
	default:
		return fmt.Errorf("unknown figure %d", figure)
	}
	return nil
}

func pick(names ...string) []llm.Model {
	var out []llm.Model
	for _, n := range names {
		if m := llm.ModelByName(n); m != nil {
			out = append(out, m)
		}
	}
	return out
}
