// Command fveval runs the FVEval benchmark end to end: every table and
// figure of the paper regenerates from one invocation. All runs share
// one evaluation engine, so duplicate formal equivalence checks are
// solved once per process.
//
// Usage:
//
//	fveval -table 1          # NL2SVA-Human greedy (Table 1)
//	fveval -table 3 -count 300
//	fveval -figure 6
//	fveval -all -limit 20    # everything, truncated for a quick look
//	fveval -table 4 -workers 8 -shard 0/4   # first of four horizontal shards
//	fveval -table 2 -cache=false            # disable the equivalence memo
//	fveval -table 2 -maxbound 12            # cap the formal bound ramp
//
// Solver-reuse and ramp statistics from the incremental formal
// backend print to stderr next to the cache statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fveval/internal/core"
	"fveval/internal/engine"
	"fveval/internal/llm"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-6)")
	figure := flag.Int("figure", 0, "figure number to regenerate (2, 3, 4, 6)")
	all := flag.Bool("all", false, "run every table and figure")
	limit := flag.Int("limit", 0, "truncate instance lists (0 = full size)")
	count := flag.Int("count", 300, "NL2SVA-Machine dataset size")
	samples := flag.Int("samples", 5, "samples per instance for pass@k runs")
	workers := flag.Int("workers", 0, "evaluation parallelism (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "evaluate one instance slice, as i/n (e.g. 0/4); combine n processes to cover a run")
	cache := flag.Bool("cache", true, "memoize formal equivalence checks across the run")
	maxBound := flag.Int("maxbound", 0, "cap for the formal backend's bound ramp: lasso bound for equivalence, BMC depth for model checking (0 = defaults, 16 each)")
	budget := flag.Int64("budget", 0, "SAT conflict budget per formal query (0 = default 200000)")
	flag.Parse()

	shardSpec, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(2)
	}
	eng := engine.New(engine.Config{
		Limit:    *limit,
		Samples:  *samples,
		Budget:   *budget,
		MaxBound: *maxBound,
		Workers:  *workers,
		Shard:    shardSpec,
		NoCache:  !*cache,
	})
	if err := run(eng, *table, *figure, *all, *count); err != nil {
		fmt.Fprintln(os.Stderr, "fveval:", err)
		os.Exit(1)
	}
	if st := eng.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintln(os.Stderr, st)
	}
	if fs := eng.FormalStats(); fs.Queries > 0 {
		fmt.Fprintln(os.Stderr, fs)
	}
}

// parseShard reads an "i/n" spec; empty means no sharding.
func parseShard(s string) (engine.Shard, error) {
	if s == "" {
		return engine.Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return engine.Shard{}, fmt.Errorf("shard %q: want i/n", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return engine.Shard{}, fmt.Errorf("shard %q: want integer i/n", s)
	}
	sh := engine.Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return engine.Shard{}, err
	}
	return sh, nil
}

func run(eng *engine.Engine, table, figure int, all bool, count int) error {
	if all {
		for _, t := range []int{6, 1, 2, 3, 4, 5} {
			if err := runTable(eng, t, count); err != nil {
				return err
			}
		}
		for _, f := range []int{2, 3, 4, 6} {
			if err := runFigure(eng, f, count); err != nil {
				return err
			}
		}
		return nil
	}
	if table > 0 {
		return runTable(eng, table, count)
	}
	if figure > 0 {
		return runFigure(eng, figure, count)
	}
	flag.Usage()
	return nil
}

func runTable(eng *engine.Engine, table, count int) error {
	switch table {
	case 1:
		reports, err := eng.NL2SVAHuman(llm.Models())
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable1(reports))
	case 2:
		models := pick("gpt-4o", "gemini-1.5-flash", "llama-3.1-70b")
		reports, err := eng.NL2SVAHumanPassK(models, []int{1, 3, 5})
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable2(reports))
	case 3:
		zero, err := eng.NL2SVAMachine(llm.Models(), 0, count)
		if err != nil {
			return err
		}
		three, err := eng.NL2SVAMachine(llm.Models(), 3, count)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable3(zero, three))
	case 4:
		models := pick("gpt-4o", "gemini-1.5-flash", "llama-3.1-70b")
		reports, err := eng.NL2SVAMachinePassK(models, []int{1, 3, 5}, count)
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable4(reports))
	case 5:
		pipe, err := eng.Design2SVA(llm.DesignModels(), "pipeline")
		if err != nil {
			return err
		}
		fsm, err := eng.Design2SVA(llm.DesignModels(), "fsm")
		if err != nil {
			return err
		}
		fmt.Println(core.FormatTable5(pipe, fsm))
	case 6:
		fmt.Println(core.FormatTable6())
	default:
		return fmt.Errorf("unknown table %d", table)
	}
	return nil
}

func runFigure(eng *engine.Engine, figure, count int) error {
	switch figure {
	case 2:
		s, err := core.Figure2()
		if err != nil {
			return err
		}
		fmt.Println(s)
	case 3:
		fmt.Println(core.Figure3(count))
	case 4:
		fmt.Println(core.Figure4())
	case 6:
		s, err := eng.Figure6(pick("gpt-4o", "llama-3.1-70b"))
		if err != nil {
			return err
		}
		fmt.Println(s)
	default:
		return fmt.Errorf("unknown figure %d", figure)
	}
	return nil
}

func pick(names ...string) []llm.Model {
	var out []llm.Model
	for _, n := range names {
		if m := llm.ModelByName(n); m != nil {
			out = append(out, m)
		}
	}
	return out
}
