// Command fvevalctl is the operator CLI for the FVEval service tier.
// It can coordinate a distributed run itself (splitting one registry
// task into shard slices, fanning them out across a worker fleet, and
// merging the partial reports into a report byte-identical to an
// unsharded run), or drive a fvevald coordinator remotely over the v1
// API through internal/service/client.
//
// Usage:
//
//	fvevalctl tasks                                             # list the registry
//	fvevalctl run -task table2 -workers http://a:8080,http://b:8080
//	fvevalctl run -task table2 -registry http://coord:8080      # fleet = registered workers
//	fvevalctl run -task nl2sva-human -local 4                   # 4 in-process engines
//	fvevalctl submit -to http://coord:8080 -task table1         # queue a run, print its id
//	fvevalctl submit -to http://coord:8080 -task table2 -distributed -follow
//	fvevalctl report -to http://coord:8080 run-000001           # fetch a finished run's payload
//	fvevalctl workers -to http://coord:8080                     # live registered fleet
//	fvevalctl metrics -to http://coord:8080                     # scrape /metrics
//	fvevalctl submit -to http://coord:8080 -task table1 -trace t.json -follow
//	fvevalctl trace -to http://coord:8080 -o t.json run-000001  # Perfetto export
//
// Tracing: `run -trace file.json` records spans locally and writes
// Chrome trace-event JSON (load it at https://ui.perfetto.dev).
// `submit -trace file.json` asks the service to record; with -follow
// the trace is fetched and converted when the run lands, and either
// way `fvevalctl trace` can export it later while the run is retained.
//
// -task accepts registry names plus tableN / figureN aliases. Worker
// failures are retried on the remaining fleet (-attempts per shard);
// a worker that keeps failing is benched for the rest of the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fveval/internal/dist"
	"fveval/internal/engine"
	"fveval/internal/fault"
	"fveval/internal/obs"
	"fveval/internal/service/api"
	"fveval/internal/service/client"
	"fveval/internal/task"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tasks":
		printRegistry()
	case "run":
		err = runCmd(os.Args[2:])
	case "submit":
		err = submitCmd(os.Args[2:])
	case "report":
		err = reportCmd(os.Args[2:])
	case "workers":
		err = workersCmd(os.Args[2:])
	case "metrics":
		err = metricsCmd(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fvevalctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvevalctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fvevalctl tasks                    list the task registry
  fvevalctl run -task <name> ...     coordinate a run across a worker fleet
  fvevalctl submit -to <url> ...     submit a run to a fvevald service
  fvevalctl report -to <url> <id>    print a finished run's payload
  fvevalctl workers -to <url>        list the registered worker fleet
  fvevalctl metrics -to <url>        scrape the service /metrics
  fvevalctl trace -to <url> <id>     export a traced run (Chrome trace-event JSON)
run flags:`)
	fs := runFlags(&runConfig{})
	fs.SetOutput(os.Stderr)
	fs.PrintDefaults()
}

func printRegistry() {
	fmt.Printf("%-24s %-8s %-8s %-9s %s\n", "Task", "Paper", "Kind", "Sharded", "Title")
	for _, s := range task.Tasks() {
		paper := ""
		switch {
		case s.Table > 0:
			paper = fmt.Sprintf("table %d", s.Table)
		case s.Figure > 0:
			paper = fmt.Sprintf("fig. %d", s.Figure)
		}
		sharded := "yes"
		if !s.Shardable() {
			sharded = "no"
		}
		fmt.Printf("%-24s %-8s %-8s %-9s %s\n", s.Name, paper, s.Kind, sharded, s.Title)
	}
}

// runConfig collects the run subcommand's flags.
type runConfig struct {
	taskName string
	workers  string
	registry string
	local    int
	shards   int
	attempts int
	timeout  time.Duration
	hedge    bool
	backoff  time.Duration
	backCap  time.Duration
	seed     int64
	deadline time.Duration
	faults   string
	jsonOut  bool
	verbose  bool
	traceOut string
	traceCap int

	limit    int
	count    int
	samples  int
	parallel int
	cache    bool
	maxBound int
	budget   int64
}

func runFlags(c *runConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.StringVar(&c.taskName, "task", "", "registry task to run (name, or tableN / figureN alias)")
	fs.StringVar(&c.workers, "workers", "", "comma-separated fvevald worker URLs (http://host:port,...)")
	fs.StringVar(&c.registry, "registry", "", "coordinator URL; fleet = its live registered workers")
	fs.IntVar(&c.local, "local", 0, "spin N in-process loopback engines instead of remote workers (0 = NumCPU when -workers is empty)")
	fs.IntVar(&c.shards, "shards", 0, "shard count override (0 = one per worker)")
	fs.IntVar(&c.attempts, "attempts", 0, "max attempts per shard before the run fails (0 = 3)")
	fs.DurationVar(&c.timeout, "shard-timeout", 0, "per-attempt deadline; an expired shard is reassigned (0 = none)")
	fs.BoolVar(&c.hedge, "hedge", false, "speculatively re-dispatch the last straggler shard to an idle worker (run only)")
	fs.DurationVar(&c.backoff, "backoff", 0, "base shard retry backoff, doubled per attempt with full jitter (0 = 50ms; run only)")
	fs.DurationVar(&c.backCap, "backoff-cap", 0, "shard retry backoff ceiling (0 = 2s; run only)")
	fs.Int64Var(&c.seed, "seed", 0, "deterministic seed for retry jitter and hedge timing (0 = 1; run only)")
	fs.DurationVar(&c.deadline, "timeout", 0, "end-to-end run deadline, forwarded to workers per shard (0 = none)")
	fs.StringVar(&c.faults, "faults", "", "client-side fault-injection plan (requires a -tags faultinject build; run only)")
	fs.BoolVar(&c.jsonOut, "json", false, "emit the merged run plus fleet metadata as JSON")
	fs.BoolVar(&c.verbose, "v", false, "stream coordinator progress to stderr")
	fs.StringVar(&c.traceOut, "trace", "", "record a run trace and write Chrome trace-event JSON here")
	fs.IntVar(&c.traceCap, "trace-cap", 0, "completed-span ring capacity for -trace (0 = 1M client-side, server default on submit)")
	fs.IntVar(&c.limit, "limit", 0, "truncate instance lists (0 = full size)")
	fs.IntVar(&c.count, "count", 0, "NL2SVA-Machine dataset size (0 = task default)")
	fs.IntVar(&c.samples, "samples", 0, "samples per instance for pass@k runs (0 = paper default)")
	fs.IntVar(&c.parallel, "j", 0, "per-worker evaluation parallelism (0 = worker default)")
	fs.BoolVar(&c.cache, "cache", true, "memoize formal equivalence checks within each worker")
	fs.IntVar(&c.maxBound, "maxbound", 0, "cap for the formal backend's bound ramp (0 = defaults)")
	fs.Int64Var(&c.budget, "budget", 0, "SAT conflict budget per formal query (0 = default)")
	return fs
}

// aliasPattern resolves tableN / figN / figureN task aliases.
var aliasPattern = regexp.MustCompile(`^(table|fig|figure)(\d+)$`)

func resolveTask(name string) (*task.Spec, error) {
	if m := aliasPattern.FindStringSubmatch(strings.ToLower(name)); m != nil {
		n, err := strconv.Atoi(m[2])
		if err == nil {
			if m[1] == "table" {
				return task.ByTable(n)
			}
			return task.ByFigure(n)
		}
	}
	return task.Lookup(name)
}

// buildRequest resolves the task and option flags into a request.
func buildRequest(c *runConfig) (task.Request, error) {
	if c.taskName == "" {
		return task.Request{}, fmt.Errorf("missing -task (see fvevalctl tasks)")
	}
	spec, err := resolveTask(c.taskName)
	if err != nil {
		return task.Request{}, err
	}
	req := task.Request{
		Task: spec.Name,
		Options: engine.Config{
			Limit:    c.limit,
			Samples:  c.samples,
			Budget:   c.budget,
			MaxBound: c.maxBound,
			Workers:  c.parallel,
			NoCache:  !c.cache,
		},
	}
	if c.count > 0 {
		if !acceptsCount(spec) {
			return task.Request{}, fmt.Errorf("task %s does not accept -count", spec.Name)
		}
		req.Params.Count = c.count
	}
	return req, nil
}

func runCmd(args []string) error {
	var c runConfig
	fs := runFlags(&c)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(&c)
	if err != nil {
		return err
	}
	runners, err := buildFleet(&c)
	if err != nil {
		return err
	}

	if err := activateFaults(c.faults); err != nil {
		return err
	}
	opts := dist.Options{
		Shards:       c.shards,
		MaxAttempts:  c.attempts,
		ShardTimeout: c.timeout,
		Hedge:        c.hedge,
		BackoffBase:  c.backoff,
		BackoffCap:   c.backCap,
		Seed:         c.seed,
	}
	if c.verbose {
		opts.Progress = func(ev dist.Event) {
			switch ev.Type {
			case dist.EventJob:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s shard %s job %d/%d (%s) %s %dms\n",
					ev.Worker, ev.Shard, ev.Job.Done, ev.Job.Total, ev.Job.Instance, ev.Job.Kind, ev.Job.WallMS)
			case dist.EventShardRetry, dist.EventWorkerDown:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s %s shard %s: %s\n", ev.Type, ev.Worker, ev.Shard, ev.Err)
			default:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s %s shard %s (%d/%d shards)\n",
					ev.Type, ev.Worker, ev.Shard, ev.Done, ev.Total)
			}
		}
	}
	coord, err := dist.New(runners, opts)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if c.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.deadline)
		defer cancel()
	}
	var rec *obs.Recorder
	var root *obs.Span
	if c.traceOut != "" {
		// A one-shot CLI coordinator has no reason to keep the service's
		// tight ring default: heavy tables (deep SAT ramps) emit tens of
		// thousands of spans, and dropping them would evict the tree's
		// roots. The cap still exists as a backstop against runaway runs.
		traceCap := c.traceCap
		if traceCap == 0 {
			traceCap = 1 << 20
		}
		rec = obs.NewRecorder(traceCap)
		root = rec.Start("run", 0)
		root.SetStr("task", req.Task)
		ctx = obs.ContextWithSpan(obs.NewContext(ctx, rec), root)
	}
	res, err := coord.Run(ctx, req)
	if err != nil {
		return err
	}
	if rec != nil {
		root.End()
		spans, dropped := rec.Snapshot()
		if err := writeChromeTrace(c.traceOut, spans, dropped); err != nil {
			return err
		}
	}
	if c.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Println(res.Run.Report.Render())
	fmt.Fprintf(os.Stderr, "fvevalctl: %d shards over %d workers, %d attempts (%d retried), %d jobs, slowest shard %dms\n",
		res.Shards, res.Workers, res.Attempts, res.Retries, res.Run.Stats.Jobs, res.Run.Stats.WallMS)
	return nil
}

// activateFaults arms a client-side fault-injection plan for the
// in-process coordinator seams (dist.dispatch, dist.response, and the
// engine points of -local loopback workers). Gated on the faultinject
// build tag, like the server's -faults flag and FVEVAL_FAULTS.
func activateFaults(spec string) error {
	if spec == "" {
		return nil
	}
	if !fault.BuildEnabled {
		return fmt.Errorf("-faults requires a binary built with -tags faultinject")
	}
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		return err
	}
	if err := fault.Activate(plan); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fvevalctl: fault injection active: %s\n", fault.Describe())
	return nil
}

// buildFleet resolves -workers / -registry / -local into runners.
func buildFleet(c *runConfig) ([]dist.Runner, error) {
	if c.local < 0 {
		return nil, fmt.Errorf("-local %d out of range", c.local)
	}
	modes := 0
	for _, set := range []bool{c.workers != "", c.registry != "", c.local > 0} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		return nil, fmt.Errorf("-workers, -registry, and -local are mutually exclusive")
	}
	if c.registry != "" {
		workers, err := client.New(c.registry).Workers(context.Background())
		if err != nil {
			return nil, fmt.Errorf("registry %s: %w", c.registry, err)
		}
		if len(workers) == 0 {
			return nil, fmt.Errorf("registry %s lists no live workers", c.registry)
		}
		runners := make([]dist.Runner, len(workers))
		for i, w := range workers {
			runners[i] = dist.NewHTTPRunner(w.URL)
		}
		return runners, nil
	}
	if c.workers != "" {
		var runners []dist.Runner
		for _, u := range strings.Split(c.workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("worker %q: want an http(s) URL", u)
			}
			runners = append(runners, dist.NewHTTPRunner(u))
		}
		if len(runners) == 0 {
			return nil, fmt.Errorf("-workers lists no URLs")
		}
		return runners, nil
	}
	n := c.local
	if n == 0 {
		n = runtime.NumCPU()
	}
	return dist.Loopback(n, engine.Config{}), nil
}

func acceptsCount(spec *task.Spec) bool {
	for _, f := range spec.Accepts {
		if f == "count" {
			return true
		}
	}
	return false
}

// submitCmd queues a run on a fvevald service. Without -follow it
// prints the run id and exits; with -follow it streams progress and
// prints the finished report.
func submitCmd(args []string) error {
	var c runConfig
	var (
		to          string
		apiKey      string
		distributed bool
		priority    int
		follow      bool
	)
	fs := runFlags(&c)
	fs.Init("submit", flag.ContinueOnError)
	fs.StringVar(&to, "to", "", "fvevald base URL (required)")
	fs.StringVar(&apiKey, "api-key", "", "X-API-Key admission identity")
	fs.BoolVar(&distributed, "distributed", false, "fan the run across the service's registered worker fleet")
	fs.IntVar(&priority, "priority", 0, "admission priority 0..9 (higher runs first)")
	fs.BoolVar(&follow, "follow", false, "wait for the run and print its report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if to == "" {
		return fmt.Errorf("missing -to <url>")
	}
	req, err := buildRequest(&c)
	if err != nil {
		return err
	}
	if c.traceOut != "" {
		req.Trace = &obs.TraceContext{Cap: c.traceCap}
	}
	cl := newClient(to, apiKey)
	sub := api.Submission{Request: req, Distributed: distributed, Priority: priority, TimeoutMS: c.deadline.Milliseconds()}

	if !follow {
		resp, err := cl.Submit(context.Background(), sub)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fvevalctl: %s %s (position %d, cached %v)\n", resp.ID, resp.Status, resp.Position, resp.Cached)
		if c.traceOut != "" {
			fmt.Fprintf(os.Stderr, "fvevalctl: tracing on; export later with: fvevalctl trace -to %s -o %s %s\n",
				to, c.traceOut, resp.ID)
		}
		fmt.Println(resp.ID)
		return nil
	}

	var progress func(task.Event)
	if c.verbose {
		progress = func(ev task.Event) {
			fmt.Fprintf(os.Stderr, "fvevalctl: job %d/%d (%s) %s %dms\n", ev.Done, ev.Total, ev.Instance, ev.Kind, ev.WallMS)
		}
	}
	view, err := cl.Run(context.Background(), sub, progress)
	if err != nil {
		return err
	}
	if c.traceOut != "" {
		spans, dropped, err := cl.Trace(context.Background(), view.ID)
		if err != nil {
			return fmt.Errorf("fetch trace for %s: %w", view.ID, err)
		}
		if err := writeChromeTrace(c.traceOut, spans, dropped); err != nil {
			return err
		}
	}
	return printRunView(view, c.jsonOut)
}

// traceCmd exports a traced run: fetch the span dump from the service
// and write it as Chrome trace-event JSON (Perfetto-loadable), or as
// the raw span NDJSON with -raw.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	to := fs.String("to", "", "fvevald base URL (required)")
	apiKey := fs.String("api-key", "", "X-API-Key admission identity")
	out := fs.String("o", "", "output file (default stdout)")
	raw := fs.Bool("raw", false, "emit the raw span NDJSON instead of Chrome trace-event JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("missing -to <url>")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fvevalctl trace -to <url> [-o file.json] <run-id>")
	}
	spans, dropped, err := newClient(*to, *apiKey).Trace(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	var data []byte
	if *raw {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := range spans {
			if err := enc.Encode(&spans[i]); err != nil {
				return err
			}
		}
		data = buf.Bytes()
	} else {
		if data, err = obs.ChromeTrace(spans); err != nil {
			return err
		}
		data = append(data, '\n')
	}
	if *out == "" || *out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fvevalctl: %s: %d spans (%d dropped) -> %s\n", fs.Arg(0), len(spans), dropped, *out)
	return nil
}

// writeChromeTrace converts completed spans to Chrome trace-event
// JSON and writes the Perfetto-loadable file.
func writeChromeTrace(path string, spans []obs.SpanData, dropped int64) error {
	data, err := obs.ChromeTrace(spans)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fvevalctl: trace: %d spans (%d dropped) -> %s\n", len(spans), dropped, path)
	return nil
}

// reportCmd fetches one run and prints its persisted payload — the
// Run (or Partial) JSON on stdout, status on stderr. The payload is
// byte-stable across server restarts, which is what the smoke tests
// diff.
func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	to := fs.String("to", "", "fvevald base URL (required)")
	apiKey := fs.String("api-key", "", "X-API-Key admission identity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("missing -to <url>")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fvevalctl report -to <url> <run-id>")
	}
	view, err := newClient(*to, *apiKey).Get(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fvevalctl: %s %s", view.ID, view.Status)
	if view.Error != "" {
		fmt.Fprintf(os.Stderr, ": %s", view.Error)
	}
	fmt.Fprintln(os.Stderr)
	return printRunView(view, true)
}

// printRunView emits a terminal run's payload: the rendered report
// (human) or the Run/Partial JSON (machine).
func printRunView(view api.RunView, jsonOut bool) error {
	var payload any
	switch {
	case view.Run != nil:
		payload = view.Run
	case view.Part != nil:
		payload = view.Part
	default:
		return fmt.Errorf("run %s (%s) carries no payload", view.ID, view.Status)
	}
	if !jsonOut && view.Run != nil {
		fmt.Println(view.Run.Report.Render())
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// workersCmd lists the live registered fleet.
func workersCmd(args []string) error {
	fs := flag.NewFlagSet("workers", flag.ContinueOnError)
	to := fs.String("to", "", "fvevald base URL (required)")
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("missing -to <url>")
	}
	workers, err := newClient(*to, "").Workers(context.Background())
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(workers)
	}
	fmt.Printf("%-16s %-32s %s\n", "ID", "URL", "Last seen")
	for _, w := range workers {
		fmt.Printf("%-16s %-32s %s\n", w.ID, w.URL, time.UnixMilli(w.LastSeenMS).Format(time.RFC3339))
	}
	return nil
}

// metricsCmd scrapes and prints the service /metrics exposition.
func metricsCmd(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	to := fs.String("to", "", "fvevald base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("missing -to <url>")
	}
	text, err := newClient(*to, "").Metrics(context.Background())
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func newClient(base, apiKey string) *client.Client {
	var opts []client.Option
	if apiKey != "" {
		opts = append(opts, client.WithAPIKey(apiKey))
	}
	return client.New(base, opts...)
}
