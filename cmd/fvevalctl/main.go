// Command fvevalctl is the distributed-run coordinator CLI: it splits
// one registry task into shard slices, fans them out across a worker
// fleet — remote fvevald endpoints or in-process loopback engines —
// retries failed or timed-out shards on healthy workers, and merges
// the partial reports into a single report byte-identical to an
// unsharded run.
//
// Usage:
//
//	fvevalctl tasks                                             # list the registry
//	fvevalctl run -task table2 -workers http://a:8080,http://b:8080
//	fvevalctl run -task nl2sva-human -local 4                   # 4 in-process engines
//	fvevalctl run -task table4 -workers http://a:8080 -shards 8 # oversubscribe for balance
//	fvevalctl run -task table1 -local 2 -json                   # merged run + fleet metadata as JSON
//
// -task accepts registry names plus tableN / figureN aliases. Worker
// failures are retried on the remaining fleet (-attempts per shard);
// a worker that keeps failing is benched for the rest of the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fveval/internal/dist"
	"fveval/internal/engine"
	"fveval/internal/task"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "tasks":
		printRegistry()
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "fvevalctl:", err)
			os.Exit(1)
		}
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fvevalctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fvevalctl tasks                 list the task registry
  fvevalctl run -task <name> ...  run a task across a worker fleet
run flags:`)
	fs := runFlags(&runConfig{})
	fs.SetOutput(os.Stderr)
	fs.PrintDefaults()
}

func printRegistry() {
	fmt.Printf("%-24s %-8s %-8s %-9s %s\n", "Task", "Paper", "Kind", "Sharded", "Title")
	for _, s := range task.Tasks() {
		paper := ""
		switch {
		case s.Table > 0:
			paper = fmt.Sprintf("table %d", s.Table)
		case s.Figure > 0:
			paper = fmt.Sprintf("fig. %d", s.Figure)
		}
		sharded := "yes"
		if !s.Shardable() {
			sharded = "no"
		}
		fmt.Printf("%-24s %-8s %-8s %-9s %s\n", s.Name, paper, s.Kind, sharded, s.Title)
	}
}

// runConfig collects the run subcommand's flags.
type runConfig struct {
	taskName string
	workers  string
	local    int
	shards   int
	attempts int
	timeout  time.Duration
	jsonOut  bool
	verbose  bool

	limit    int
	count    int
	samples  int
	parallel int
	cache    bool
	maxBound int
	budget   int64
}

func runFlags(c *runConfig) *flag.FlagSet {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.StringVar(&c.taskName, "task", "", "registry task to run (name, or tableN / figureN alias)")
	fs.StringVar(&c.workers, "workers", "", "comma-separated fvevald worker URLs (http://host:port,...)")
	fs.IntVar(&c.local, "local", 0, "spin N in-process loopback engines instead of remote workers (0 = NumCPU when -workers is empty)")
	fs.IntVar(&c.shards, "shards", 0, "shard count override (0 = one per worker)")
	fs.IntVar(&c.attempts, "attempts", 0, "max attempts per shard before the run fails (0 = 3)")
	fs.DurationVar(&c.timeout, "shard-timeout", 0, "per-attempt deadline; an expired shard is reassigned (0 = none)")
	fs.BoolVar(&c.jsonOut, "json", false, "emit the merged run plus fleet metadata as JSON")
	fs.BoolVar(&c.verbose, "v", false, "stream coordinator progress to stderr")
	fs.IntVar(&c.limit, "limit", 0, "truncate instance lists (0 = full size)")
	fs.IntVar(&c.count, "count", 0, "NL2SVA-Machine dataset size (0 = task default)")
	fs.IntVar(&c.samples, "samples", 0, "samples per instance for pass@k runs (0 = paper default)")
	fs.IntVar(&c.parallel, "j", 0, "per-worker evaluation parallelism (0 = worker default)")
	fs.BoolVar(&c.cache, "cache", true, "memoize formal equivalence checks within each worker")
	fs.IntVar(&c.maxBound, "maxbound", 0, "cap for the formal backend's bound ramp (0 = defaults)")
	fs.Int64Var(&c.budget, "budget", 0, "SAT conflict budget per formal query (0 = default)")
	return fs
}

// aliasPattern resolves tableN / figN / figureN task aliases.
var aliasPattern = regexp.MustCompile(`^(table|fig|figure)(\d+)$`)

func resolveTask(name string) (*task.Spec, error) {
	if m := aliasPattern.FindStringSubmatch(strings.ToLower(name)); m != nil {
		n, err := strconv.Atoi(m[2])
		if err == nil {
			if m[1] == "table" {
				return task.ByTable(n)
			}
			return task.ByFigure(n)
		}
	}
	return task.Lookup(name)
}

func runCmd(args []string) error {
	var c runConfig
	fs := runFlags(&c)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if c.taskName == "" {
		return fmt.Errorf("missing -task (see fvevalctl tasks)")
	}
	spec, err := resolveTask(c.taskName)
	if err != nil {
		return err
	}

	runners, err := buildFleet(&c)
	if err != nil {
		return err
	}
	req := task.Request{
		Task: spec.Name,
		Options: engine.Config{
			Limit:    c.limit,
			Samples:  c.samples,
			Budget:   c.budget,
			MaxBound: c.maxBound,
			Workers:  c.parallel,
			NoCache:  !c.cache,
		},
	}
	if c.count > 0 {
		if !acceptsCount(spec) {
			return fmt.Errorf("task %s does not accept -count", spec.Name)
		}
		req.Params.Count = c.count
	}

	opts := dist.Options{
		Shards:       c.shards,
		MaxAttempts:  c.attempts,
		ShardTimeout: c.timeout,
	}
	if c.verbose {
		opts.Progress = func(ev dist.Event) {
			switch ev.Type {
			case dist.EventJob:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s shard %s job %d/%d (%s)\n",
					ev.Worker, ev.Shard, ev.Job.Done, ev.Job.Total, ev.Job.Instance)
			case dist.EventShardRetry, dist.EventWorkerDown:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s %s shard %s: %s\n", ev.Type, ev.Worker, ev.Shard, ev.Err)
			default:
				fmt.Fprintf(os.Stderr, "fvevalctl: %s %s shard %s (%d/%d shards)\n",
					ev.Type, ev.Worker, ev.Shard, ev.Done, ev.Total)
			}
		}
	}
	coord, err := dist.New(runners, opts)
	if err != nil {
		return err
	}
	res, err := coord.Run(context.Background(), req)
	if err != nil {
		return err
	}
	if c.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Println(res.Run.Report.Render())
	fmt.Fprintf(os.Stderr, "fvevalctl: %d shards over %d workers, %d attempts (%d retried), %d jobs, slowest shard %dms\n",
		res.Shards, res.Workers, res.Attempts, res.Retries, res.Run.Stats.Jobs, res.Run.Stats.WallMS)
	return nil
}

// buildFleet resolves -workers / -local into runners.
func buildFleet(c *runConfig) ([]dist.Runner, error) {
	if c.local < 0 {
		return nil, fmt.Errorf("-local %d out of range", c.local)
	}
	if c.workers != "" && c.local > 0 {
		return nil, fmt.Errorf("-workers and -local are mutually exclusive")
	}
	if c.workers != "" {
		var runners []dist.Runner
		for _, u := range strings.Split(c.workers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("worker %q: want an http(s) URL", u)
			}
			runners = append(runners, dist.NewHTTPRunner(u))
		}
		if len(runners) == 0 {
			return nil, fmt.Errorf("-workers lists no URLs")
		}
		return runners, nil
	}
	n := c.local
	if n == 0 {
		n = runtime.NumCPU()
	}
	return dist.Loopback(n, engine.Config{}), nil
}

func acceptsCount(spec *task.Spec) bool {
	for _, f := range spec.Accepts {
		if f == "count" {
			return true
		}
	}
	return false
}
