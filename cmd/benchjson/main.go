// Command benchjson converts `go test -bench` output into the
// BENCH_tables.json perf-trajectory artifact: one entry per benchmark
// (the Benchmark prefix and -cpus suffix stripped) carrying ns/op, the
// registry task that regenerates the same artifact, the shard and
// worker counts parsed from distributed sub-benchmark names
// ("DistTable1/shards=2/workers=2"), and — schema v4 — every custom
// benchmark metric (e.g. the simulation prefilter hit rate reported
// as "prefilter-hit-rate"), so the file tracks prefilter
// effectiveness next to raw timings. The previous run's ns/op ride
// along as the baseline, so each artifact carries its own
// before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson -prev BENCH_tables.json > BENCH_tables.json.new
//
// With -gate-pct N (and -prev), benchjson additionally acts as the
// CI bench-regression guard: any TableN/DistTableN entry whose ns/op
// regressed more than N percent against the baseline fails the run
// (exit 1) after writing the artifact, so the job both records and
// enforces the perf trajectory.
//
// The Makefile bench target wires this up and rotates the file; CI
// uploads it as a build artifact so the repo accumulates a perf
// trajectory across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"fveval/internal/task"
)

// Entry is one benchmark's record in the v4 schema.
type Entry struct {
	// NsPerOp is nanoseconds per iteration for this run.
	NsPerOp int64 `json:"ns_per_op"`
	// Task is the registry task regenerating the same artifact
	// (fveval -task <name>), when the benchmark maps to one.
	Task string `json:"task,omitempty"`
	// Shards and Workers locate the entry on the distributed-scaling
	// axis: 1/1 for single-process benchmarks, the fleet shape for
	// Dist benchmarks, so speedup curves fall out of one file.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Metrics carries the benchmark's custom b.ReportMetric values
	// (unit -> value), e.g. "prefilter-hit-rate".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_tables.json schema (fveval-bench/v4).
type File struct {
	Schema string `json:"schema"`
	// NsPerOp is the flat name → ns/op map, kept from v2 so baselines
	// diff across schema versions.
	NsPerOp map[string]int64 `json:"ns_per_op"`
	// Entries is the per-benchmark record: task mapping, shard/worker
	// counts, and custom metrics.
	Entries map[string]Entry `json:"entries"`
	// BaselineNsPerOp carries the previous artifact's NsPerOp so the
	// file itself records the before/after pair.
	BaselineNsPerOp map[string]int64 `json:"baseline_ns_per_op,omitempty"`
}

// artifactName extracts the paper-artifact prefix of a benchmark name
// ("Table2HumanPassK" or "DistTable1" -> table) and resolves the
// registry task that reproduces it.
var artifactName = regexp.MustCompile(`^(?:Dist)?(Table|Figure)(\d+)`)

// namedArtifact maps benchmarks of registry tasks with no paper
// table/figure number (this repo's own task families) to their
// registry names.
var namedArtifact = map[string]string{
	"TableAGR": "agr",
	"FigureR":  "refinement",
}

func taskFor(bench string) (string, bool) {
	base := strings.TrimPrefix(bench, "Dist")
	if i := strings.IndexByte(base, '/'); i >= 0 {
		base = base[:i]
	}
	if t, ok := namedArtifact[base]; ok {
		return t, true
	}
	m := artifactName.FindStringSubmatch(bench)
	if m == nil {
		return "", false
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return "", false
	}
	var spec *task.Spec
	if m[1] == "Table" {
		spec, err = task.ByTable(n)
	} else {
		spec, err = task.ByFigure(n)
	}
	if err != nil {
		return "", false
	}
	return spec.Name, true
}

// benchLine matches e.g. "BenchmarkTable2HumanPassK-8   3   53136316 ns/op"
// including sub-benchmark names ("BenchmarkDistTable1/shards=2/workers=2-8")
// and captures the trailing custom-metric pairs ("0.75 prefilter-hit-rate").
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$`)

// metricPair pulls one "value unit" custom metric off the tail.
var metricPair = regexp.MustCompile(`\s+(\d+(?:\.\d+)?(?:[eE][+-]?\d+)?) ([^\s]+)`)

// fleetDim pulls shard/worker counts out of sub-benchmark path
// segments ("/shards=2", "/workers=4").
var fleetDim = regexp.MustCompile(`/(shards|workers)=(\d+)`)

func entryFor(name string, ns int64, tail string) Entry {
	e := Entry{NsPerOp: ns, Shards: 1, Workers: 1}
	if t, ok := taskFor(name); ok {
		e.Task = t
	}
	for _, m := range fleetDim.FindAllStringSubmatch(name, -1) {
		if n, err := strconv.Atoi(m[2]); err == nil {
			if m[1] == "shards" {
				e.Shards = n
			} else {
				e.Workers = n
			}
		}
	}
	for _, m := range metricPair.FindAllStringSubmatch(tail, -1) {
		if m[2] == "B/op" || m[2] == "allocs/op" || m[2] == "MB/s" {
			continue // standard testing metrics, not custom ones
		}
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[m[2]] = v
		}
	}
	return e
}

// gated reports whether a benchmark participates in the regression
// gate: every table entry plus the named task-family artifacts,
// single-process or distributed.
var gated = regexp.MustCompile(`^(?:Dist)?(?:Table\d|TableAGR|FigureR)`)

func main() {
	prev := flag.String("prev", "", "previous BENCH_tables.json whose ns_per_op becomes this artifact's baseline")
	gatePct := flag.Float64("gate-pct", 0, "fail (exit 1) when any TableN entry's ns/op regresses more than this percentage against -prev (0 disables the gate)")
	flag.Parse()

	out := File{
		Schema:  "fveval-bench/v4",
		NsPerOp: map[string]int64{},
		Entries: map[string]Entry{},
	}
	if *prev != "" {
		if data, err := os.ReadFile(*prev); err == nil {
			var old File
			if json.Unmarshal(data, &old) == nil && len(old.NsPerOp) > 0 {
				out.BaselineNsPerOp = old.NsPerOp
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out.NsPerOp[m[1]] = int64(ns)
		out.Entries[m[1]] = entryFor(m[1], int64(ns), m[3])
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.NsPerOp) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *gatePct > 0 && len(out.BaselineNsPerOp) > 0 {
		failed := false
		for name, base := range out.BaselineNsPerOp {
			if !gated.MatchString(name) || base <= 0 {
				continue
			}
			now, ok := out.NsPerOp[name]
			if !ok {
				continue // benchmark removed or renamed; not a regression
			}
			limit := float64(base) * (1 + *gatePct/100)
			if float64(now) > limit {
				fmt.Fprintf(os.Stderr, "benchjson: %s regressed %.1f%% (%d -> %d ns/op, gate %.0f%%)\n",
					name, 100*(float64(now)/float64(base)-1), base, now, *gatePct)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
