// Command benchjson converts `go test -bench` output into the
// BENCH_tables.json perf-trajectory artifact: a map from benchmark
// name (the Benchmark prefix and -cpus suffix stripped) to ns/op,
// alongside the previous run's numbers so each artifact carries its
// own before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson -prev BENCH_tables.json > BENCH_tables.json.new
//
// The Makefile bench target wires this up and rotates the file; CI
// uploads it as a build artifact so the repo accumulates a perf
// trajectory across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"

	"fveval/internal/task"
)

// File is the BENCH_tables.json schema.
type File struct {
	Schema string `json:"schema"`
	// NsPerOp maps benchmark name to nanoseconds per iteration for
	// this run.
	NsPerOp map[string]int64 `json:"ns_per_op"`
	// Tasks maps each table/figure benchmark onto the registry task
	// that regenerates the same artifact (fveval -task <name>), so the
	// perf trajectory is navigable from the task registry.
	Tasks map[string]string `json:"tasks,omitempty"`
	// BaselineNsPerOp carries the previous artifact's NsPerOp so the
	// file itself records the before/after pair.
	BaselineNsPerOp map[string]int64 `json:"baseline_ns_per_op,omitempty"`
}

// artifactName extracts the paper-artifact prefix of a benchmark name
// ("Table2HumanPassK" -> table 2) and resolves the registry task that
// reproduces it.
var artifactName = regexp.MustCompile(`^(Table|Figure)(\d+)`)

func taskFor(bench string) (string, bool) {
	m := artifactName.FindStringSubmatch(bench)
	if m == nil {
		return "", false
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return "", false
	}
	var spec *task.Spec
	if m[1] == "Table" {
		spec, err = task.ByTable(n)
	} else {
		spec, err = task.ByFigure(n)
	}
	if err != nil {
		return "", false
	}
	return spec.Name, true
}

// benchLine matches e.g. "BenchmarkTable2HumanPassK-8   3   53136316 ns/op".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

func main() {
	prev := flag.String("prev", "", "previous BENCH_tables.json whose ns_per_op becomes this artifact's baseline")
	flag.Parse()

	out := File{Schema: "fveval-bench/v2", NsPerOp: map[string]int64{}, Tasks: map[string]string{}}
	if *prev != "" {
		if data, err := os.ReadFile(*prev); err == nil {
			var old File
			if json.Unmarshal(data, &old) == nil && len(old.NsPerOp) > 0 {
				out.BaselineNsPerOp = old.NsPerOp
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out.NsPerOp[m[1]] = int64(ns)
		if name, ok := taskFor(m[1]); ok {
			out.Tasks[m[1]] = name
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.NsPerOp) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
