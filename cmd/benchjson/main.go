// Command benchjson converts `go test -bench` output into the
// BENCH_tables.json perf-trajectory artifact: one entry per benchmark
// (the Benchmark prefix and -cpus suffix stripped) carrying ns/op, the
// registry task that regenerates the same artifact, and — schema v3 —
// the shard and worker counts parsed from distributed sub-benchmark
// names ("DistTable1/shards=2/workers=2"), so the file tracks
// distributed speedups next to single-process numbers. The previous
// run's ns/op ride along as the baseline, so each artifact carries its
// own before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson -prev BENCH_tables.json > BENCH_tables.json.new
//
// The Makefile bench target wires this up and rotates the file; CI
// uploads it as a build artifact so the repo accumulates a perf
// trajectory across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"

	"fveval/internal/task"
)

// Entry is one benchmark's record in the v3 schema.
type Entry struct {
	// NsPerOp is nanoseconds per iteration for this run.
	NsPerOp int64 `json:"ns_per_op"`
	// Task is the registry task regenerating the same artifact
	// (fveval -task <name>), when the benchmark maps to one.
	Task string `json:"task,omitempty"`
	// Shards and Workers locate the entry on the distributed-scaling
	// axis: 1/1 for single-process benchmarks, the fleet shape for
	// Dist benchmarks, so speedup curves fall out of one file.
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
}

// File is the BENCH_tables.json schema (fveval-bench/v3).
type File struct {
	Schema string `json:"schema"`
	// NsPerOp is the flat name → ns/op map, kept from v2 so baselines
	// diff across schema versions.
	NsPerOp map[string]int64 `json:"ns_per_op"`
	// Entries is the v3 per-benchmark record, adding task mapping and
	// shard/worker counts.
	Entries map[string]Entry `json:"entries"`
	// BaselineNsPerOp carries the previous artifact's NsPerOp so the
	// file itself records the before/after pair.
	BaselineNsPerOp map[string]int64 `json:"baseline_ns_per_op,omitempty"`
}

// artifactName extracts the paper-artifact prefix of a benchmark name
// ("Table2HumanPassK" or "DistTable1" -> table) and resolves the
// registry task that reproduces it.
var artifactName = regexp.MustCompile(`^(?:Dist)?(Table|Figure)(\d+)`)

func taskFor(bench string) (string, bool) {
	m := artifactName.FindStringSubmatch(bench)
	if m == nil {
		return "", false
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return "", false
	}
	var spec *task.Spec
	if m[1] == "Table" {
		spec, err = task.ByTable(n)
	} else {
		spec, err = task.ByFigure(n)
	}
	if err != nil {
		return "", false
	}
	return spec.Name, true
}

// benchLine matches e.g. "BenchmarkTable2HumanPassK-8   3   53136316 ns/op"
// including sub-benchmark names ("BenchmarkDistTable1/shards=2/workers=2-8").
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// fleetDim pulls shard/worker counts out of sub-benchmark path
// segments ("/shards=2", "/workers=4").
var fleetDim = regexp.MustCompile(`/(shards|workers)=(\d+)`)

func entryFor(name string, ns int64) Entry {
	e := Entry{NsPerOp: ns, Shards: 1, Workers: 1}
	if t, ok := taskFor(name); ok {
		e.Task = t
	}
	for _, m := range fleetDim.FindAllStringSubmatch(name, -1) {
		if n, err := strconv.Atoi(m[2]); err == nil {
			if m[1] == "shards" {
				e.Shards = n
			} else {
				e.Workers = n
			}
		}
	}
	return e
}

func main() {
	prev := flag.String("prev", "", "previous BENCH_tables.json whose ns_per_op becomes this artifact's baseline")
	flag.Parse()

	out := File{
		Schema:  "fveval-bench/v3",
		NsPerOp: map[string]int64{},
		Entries: map[string]Entry{},
	}
	if *prev != "" {
		if data, err := os.ReadFile(*prev); err == nil {
			var old File
			if json.Unmarshal(data, &old) == nil && len(old.NsPerOp) > 0 {
				out.BaselineNsPerOp = old.NsPerOp
			}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out.NsPerOp[m[1]] = int64(ns)
		out.Entries[m[1]] = entryFor(m[1], int64(ns))
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.NsPerOp) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
