// Command rtlgen emits Design2SVA synthetic test instances (design +
// testbench header) to stdout or a directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fveval/internal/gen/rtlgen"
)

func main() {
	kind := flag.String("kind", "fsm", "category: fsm or pipeline")
	outDir := flag.String("out", "", "write the 96-instance sweep to this directory")
	seed := flag.Int64("seed", 1, "seed for a single instance (ignored with -out)")
	flag.Parse()

	if *outDir != "" {
		insts := rtlgen.Sweep96(*kind)
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, inst := range insts {
			if err := os.WriteFile(filepath.Join(*outDir, inst.ID+".sv"),
				[]byte(inst.Design), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, inst.ID+"_tb.sv"),
				[]byte(inst.Bench), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d %s instances to %s\n", len(insts), *kind, *outDir)
		return
	}
	var inst *rtlgen.Instance
	if *kind == "pipeline" {
		inst = rtlgen.GeneratePipeline(rtlgen.PipelineParams{
			Units: 2, Depth: 6, Width: 32, Complexity: 3, Seed: *seed})
	} else {
		inst = rtlgen.GenerateFSM(rtlgen.FSMParams{
			States: 4, Edges: 8, Width: 32, Complexity: 2, Seed: *seed})
	}
	fmt.Println(inst.Design)
	fmt.Println(inst.Bench)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtlgen:", err)
	os.Exit(1)
}
