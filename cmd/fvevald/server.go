package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"fveval/internal/task"
)

// Run lifecycle states.
const (
	statusRunning   = "running"
	statusDone      = "done"
	statusError     = "error"
	statusCancelled = "cancelled"
)

// runState tracks one submitted run: its request, its lifecycle, the
// buffered progress events (replayed to late stream subscribers), and
// the final result (a unified Run, or a raw Partial for shard-scoped
// submissions).
type runState struct {
	id     string
	req    task.Request
	cancel context.CancelFunc

	mu     sync.Mutex
	status string
	events []task.Event
	// notify is closed (and, while running, replaced) whenever events
	// or status change, waking every waiting stream handler.
	notify  chan struct{}
	result  *task.Run
	partial *task.Partial
	errMsg  string
}

// publish appends one progress event and wakes streamers. It is the
// run's task.Request.Progress callback, so calls arrive serialized
// from the run's collector goroutine.
func (rs *runState) publish(ev task.Event) {
	rs.mu.Lock()
	rs.events = append(rs.events, ev)
	close(rs.notify)
	rs.notify = make(chan struct{})
	rs.mu.Unlock()
}

// finish records the run's terminal state and wakes streamers one
// last time (without replacing notify: the channel stays closed, so
// any later subscriber proceeds immediately and sees the final
// status).
func (rs *runState) finish(res *task.Run, partial *task.Partial, err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch {
	case err == nil:
		rs.status = statusDone
		rs.result = res
		rs.partial = partial
	case errors.Is(err, context.Canceled):
		rs.status = statusCancelled
		rs.errMsg = err.Error()
	default:
		rs.status = statusError
		rs.errMsg = err.Error()
	}
	close(rs.notify)
}

// maxRetainedRuns bounds how many runs the server keeps: beyond it,
// the oldest terminal runs (with their buffered events and results)
// are evicted so a long-lived server does not grow without bound.
// Running evaluations are never evicted.
const maxRetainedRuns = 64

// server is the fvevald HTTP front-end: one shared task engine serves
// every request, so the equivalence cache and judgment memos are
// reused across runs.
type server struct {
	eng  *task.Engine
	mux  *http.ServeMux
	mu   sync.Mutex
	seq  int
	runs map[string]*runState
	// order lists run ids oldest-first for eviction.
	order []string
	// draining refuses new submissions during graceful shutdown; wg
	// tracks in-flight run goroutines so drain can wait them out.
	draining bool
	wg       sync.WaitGroup
}

func newServer(eng *task.Engine) *server {
	s := &server{eng: eng, mux: http.NewServeMux(), runs: map[string]*runState{}}
	s.mux.HandleFunc("GET /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleTasks lists the registry: GET /v1/tasks.
func (s *server) handleTasks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tasks": task.Tasks()})
}

// handleSubmit starts a run: POST /v1/runs with a task.Request body.
// The request is validated synchronously (400 on a bad task name,
// parameter, or option) and evaluated asynchronously; poll
// GET /v1/runs/{id} or stream GET /v1/runs/{id}/events.
//
// A body with "partial": true — or any shard-scoped options, since a
// shard's aggregated table is a dead end — evaluates via RunPartial
// and surfaces the raw partial report in the run view, ready for
// task.MergeReports on a coordinator.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub task.Submission
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	req := sub.Request
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	partial := sub.Partial || req.Options.Shard.Enabled()

	ctx, cancel := context.WithCancel(context.Background())
	rs := &runState{
		req: req, cancel: cancel,
		status: statusRunning,
		notify: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.seq++
	rs.id = fmt.Sprintf("run-%04d", s.seq)
	s.runs[rs.id] = rs
	s.order = append(s.order, rs.id)
	s.evictLocked()
	s.wg.Add(1)
	s.mu.Unlock()

	req.Progress = rs.publish
	go func() {
		defer s.wg.Done()
		defer cancel()
		if partial {
			p, err := s.eng.RunPartial(ctx, req)
			rs.finish(nil, p, err)
			return
		}
		res, err := s.eng.Run(ctx, req)
		rs.finish(res, nil, err)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": rs.id, "status": statusRunning})
}

// drain begins graceful shutdown: refuse new submissions, cancel
// every in-flight run, and wait for their goroutines to record
// terminal states (which also wakes and ends every event stream).
func (s *server) drain() {
	s.mu.Lock()
	s.draining = true
	states := make([]*runState, 0, len(s.runs))
	for _, rs := range s.runs {
		states = append(states, rs)
	}
	s.mu.Unlock()
	for _, rs := range states {
		rs.cancel()
	}
	s.wg.Wait()
}

// evictLocked drops the oldest terminal runs beyond maxRetainedRuns;
// the caller holds s.mu (taking each run's mutex under it matches the
// lock order used by handleList).
func (s *server) evictLocked() {
	excess := len(s.order) - maxRetainedRuns
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		rs := s.runs[id]
		rs.mu.Lock()
		terminal := rs.status != statusRunning
		rs.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.runs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *runState {
	s.mu.Lock()
	rs := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if rs == nil {
		writeError(w, http.StatusNotFound, "unknown run "+r.PathValue("id"))
	}
	return rs
}

// runView is the poll shape: GET /v1/runs/{id}.
type runView struct {
	ID     string        `json:"id"`
	Status string        `json:"status"`
	Task   string        `json:"task"`
	Events int           `json:"events"`
	Error  string        `json:"error,omitempty"`
	Run    *task.Run     `json:"run,omitempty"`
	Part   *task.Partial `json:"partial,omitempty"`
	Last   *task.Event   `json:"last_event,omitempty"`
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	rs.mu.Lock()
	v := runView{
		ID: rs.id, Status: rs.status, Task: rs.req.Task,
		Events: len(rs.events), Error: rs.errMsg, Run: rs.result, Part: rs.partial,
	}
	if n := len(rs.events); n > 0 {
		last := rs.events[n-1]
		v.Last = &last
	}
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]runView, 0, len(s.runs))
	for _, rs := range s.runs {
		rs.mu.Lock()
		views = append(views, runView{ID: rs.id, Status: rs.status, Task: rs.req.Task, Events: len(rs.events)})
		rs.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"runs": views})
}

// handleCancel aborts a run: DELETE /v1/runs/{id}. The run reaches
// the "cancelled" state once in-flight jobs drain.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	rs.cancel()
	rs.mu.Lock()
	status := rs.status
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"id": rs.id, "status": status})
}

// handleEvents streams progress: GET /v1/runs/{id}/events. Buffered
// events replay first, then live events follow as they happen, until
// the run reaches a terminal state or the client disconnects. The
// default framing is NDJSON (one task.Event per line, then a final
// {"status": ...} line); clients sending Accept: text/event-stream
// get SSE framing ("progress" events, then one "end" event).
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rs := s.lookup(w, r)
	if rs == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	write := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			fmt.Fprintf(w, "%s\n", data)
		}
	}

	sent := 0
	for {
		rs.mu.Lock()
		pending := rs.events[sent:]
		sent = len(rs.events)
		status := rs.status
		errMsg := rs.errMsg
		notify := rs.notify
		rs.mu.Unlock()

		for _, ev := range pending {
			write("progress", ev)
		}
		if len(pending) > 0 {
			flusher.Flush()
		}
		if status != statusRunning {
			end := map[string]string{"status": status}
			if errMsg != "" {
				end["error"] = errMsg
			}
			write("end", end)
			flusher.Flush()
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
