package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fveval/internal/dist"
	"fveval/internal/engine"
	"fveval/internal/task"
)

// TestServiceEndToEnd is the smoke flow CI exercises: list the
// registry, submit a small run, stream its progress, poll it to
// completion, and check the returned unified report renders the
// paper table.
func TestServiceEndToEnd(t *testing.T) {
	srv := httptest.NewServer(newServer(task.NewEngine(engine.Config{Workers: 2})))
	defer srv.Close()

	// 1. Registry listing.
	var tasks struct {
		Tasks []task.Spec `json:"tasks"`
	}
	getJSON(t, srv.URL+"/v1/tasks", &tasks)
	if len(tasks.Tasks) < 10 {
		t.Fatalf("registry listing too small: %d", len(tasks.Tasks))
	}
	found := false
	for _, s := range tasks.Tasks {
		if s.Name == "nl2sva-human" && s.Table == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("nl2sva-human missing from listing")
	}

	// 2. Submit a small run.
	body := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":6}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct{ ID, Status string }
	decodeBody(t, resp, &submitted)
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, submitted.ID)
	}

	// 3. Stream progress events (NDJSON): expect one line per job plus
	// a terminal status line.
	streamResp, err := http.Get(srv.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []task.Event
	var terminal string
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]any
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if st, ok := probe["status"].(string); ok {
			terminal = st
			break
		}
		var ev task.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if terminal != statusDone {
		t.Fatalf("stream ended with %q, want %q", terminal, statusDone)
	}
	if len(events) != 6 {
		t.Fatalf("streamed %d events, want 6", len(events))
	}
	for i, ev := range events {
		if ev.Task != "nl2sva-human" || ev.Done != i+1 || ev.Total != 6 {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}

	// 4. Poll the finished run; the unified report must render Table 1.
	var view struct {
		ID, Status string
		Run        *task.Run
	}
	getJSON(t, srv.URL+"/v1/runs/"+submitted.ID, &view)
	if view.Status != statusDone || view.Run == nil {
		t.Fatalf("poll: %+v", view)
	}
	table := view.Run.Report.Render()
	if !strings.HasPrefix(table, "Table 1:") || !strings.Contains(table, "gpt-4o") {
		t.Fatalf("rendered report malformed:\n%s", table)
	}
	if view.Run.Stats.Jobs != 6 {
		t.Fatalf("run stats jobs %d, want 6", view.Run.Stats.Jobs)
	}

	// 5. The run list includes it.
	var list struct {
		Runs []struct{ ID, Status string }
	}
	getJSON(t, srv.URL+"/v1/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != submitted.ID {
		t.Fatalf("run list malformed: %+v", list)
	}
}

// TestServiceValidationAndErrors checks the 400/404 surfaces.
func TestServiceValidationAndErrors(t *testing.T) {
	srv := httptest.NewServer(newServer(task.NewEngine(engine.Config{})))
	defer srv.Close()

	bad := []string{
		`{"task":"no-such-task"}`,
		`{"task":"nl2sva-human","params":{"kinds":["fsm"]}}`,
		`{"task":"nl2sva-human","options":{"limit":-1}}`,
		`{"task":"nl2sva-human","unknown_field":1}`,
		`{not json`,
	}
	for _, body := range bad {
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/runs/run-9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run: status %d, want 404", resp.StatusCode)
	}
}

// TestServiceCancel submits a larger run, cancels it, and polls until
// it lands in the cancelled state.
func TestServiceCancel(t *testing.T) {
	srv := httptest.NewServer(newServer(task.NewEngine(engine.Config{Workers: 1})))
	defer srv.Close()

	body := `{"task":"nl2sva-human-passk","params":{"models":["gpt-4o","llama-3.1-70b"]},"options":{"samples":5,"workers":1}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct{ ID string }
	decodeBody(t, resp, &submitted)

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+submitted.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var view struct{ Status string }
		getJSON(t, srv.URL+"/v1/runs/"+submitted.ID, &view)
		if view.Status != statusRunning {
			// A fast machine may finish the run before the cancel
			// lands; both terminal states are acceptable, but hanging
			// in "running" is not.
			if view.Status != statusCancelled && view.Status != statusDone {
				t.Fatalf("unexpected terminal status %q", view.Status)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never left the running state after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceSSEFraming checks the Accept-negotiated SSE framing.
func TestServiceSSEFraming(t *testing.T) {
	srv := httptest.NewServer(newServer(task.NewEngine(engine.Config{})))
	defer srv.Close()

	body := `{"task":"dataset-stats"}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct{ ID string }
	decodeBody(t, resp, &submitted)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/runs/"+submitted.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(sresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event: end") {
		t.Fatalf("SSE stream missing end event:\n%s", buf.String())
	}
}

// pollTerminal waits for a run to leave the running state and returns
// its final view.
func pollTerminal(t *testing.T, base, id string) (view struct {
	Status  string
	Error   string
	Run     *task.Run
	Partial *task.Partial
}) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, base+"/v1/runs/"+id, &view)
		if view.Status != statusRunning {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never finished", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServicePartialRun submits a shard-scoped run and expects the
// raw partial-report wire shape (not an aggregated Run) back.
func TestServicePartialRun(t *testing.T) {
	srv := httptest.NewServer(newServer(task.NewEngine(engine.Config{})))
	defer srv.Close()

	body := `{"task":"nl2sva-human","params":{"models":["gpt-4o"]},"options":{"limit":6,"shard":{"index":0,"count":2}}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct{ ID string }
	decodeBody(t, resp, &submitted)
	view := pollTerminal(t, srv.URL, submitted.ID)
	if view.Status != statusDone {
		t.Fatalf("partial run ended %s (%s)", view.Status, view.Error)
	}
	if view.Run != nil {
		t.Fatalf("shard-scoped run returned an aggregated Run")
	}
	p := view.Partial
	if p == nil || p.Task != "nl2sva-human" || len(p.Groups) != 1 {
		t.Fatalf("partial malformed: %+v", p)
	}
	g := p.Groups[0].Grid
	want := engine.Shard{Index: 0, Count: 2}
	if g == nil || g.Shard != want || g.Total != 6 || g.Local != 3 {
		t.Fatalf("grid provenance malformed: %+v", g)
	}
}

// TestClusterDistributedRun is the in-process version of the CI
// cluster smoke: two fvevald workers behind dist.HTTPRunner — one of
// which crashes its first submission — and coordinator output must be
// byte-identical to a single-engine run.
func TestClusterDistributedRun(t *testing.T) {
	a := httptest.NewServer(newServer(task.NewEngine(engine.Config{})))
	defer a.Close()
	healthy := newServer(task.NewEngine(engine.Config{}))
	var injected atomic.Bool
	injected.Store(true)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && injected.CompareAndSwap(true, false) {
			http.Error(w, `{"error":"injected worker crash"}`, http.StatusInternalServerError)
			return
		}
		healthy.ServeHTTP(w, r)
	}))
	defer b.Close()

	req := task.Request{
		Task:    "nl2sva-human",
		Params:  task.Params{Models: []string{"gpt-4o", "llama-3-8b"}},
		Options: engine.Config{Limit: 6, Workers: 2},
	}
	base, err := task.NewEngine(engine.Config{}).Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc, err := base.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var jobs atomic.Int64
	coord, err := dist.New(
		[]dist.Runner{dist.NewHTTPRunner(a.URL), dist.NewHTTPRunner(b.URL)},
		dist.Options{Progress: func(ev dist.Event) {
			if ev.Type == dist.EventJob {
				jobs.Add(1)
			}
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, err := res.Run.Report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnc, wantEnc) {
		t.Fatalf("distributed Encode diverged\n--- dist ---\n%s\n--- single ---\n%s", gotEnc, wantEnc)
	}
	if got, want := res.Run.Report.Render(), base.Report.Render(); got != want {
		t.Fatalf("distributed Render diverged\n--- dist ---\n%s\n--- single ---\n%s", got, want)
	}
	if res.Retries < 1 {
		t.Fatalf("injected failure was never retried: %+v", res)
	}
	// 2 models x 6 instances, streamed once each across the fleet.
	if jobs.Load() != 12 {
		t.Fatalf("streamed %d merged job events, want 12", jobs.Load())
	}
}

// TestServerDrain exercises the graceful-shutdown path: in-flight
// runs are cancelled to a terminal state, their event streams end,
// and new submissions are refused with 503.
func TestServerDrain(t *testing.T) {
	s := newServer(task.NewEngine(engine.Config{Workers: 1}))
	srv := httptest.NewServer(s)
	defer srv.Close()

	body := `{"task":"nl2sva-human-passk","params":{"models":["gpt-4o","llama-3.1-70b"]},"options":{"samples":5,"workers":1}}`
	resp, err := http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct{ ID string }
	decodeBody(t, resp, &submitted)

	s.drain()

	view := pollTerminal(t, srv.URL, submitted.ID)
	if view.Status == statusRunning {
		t.Fatalf("drain left run %s running", submitted.ID)
	}

	// The drained run's event stream must replay and terminate, not hang.
	streamResp, err := http.Get(srv.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(streamResp.Body); err != nil {
		t.Fatal(err)
	}
	streamResp.Body.Close()
	if !strings.Contains(buf.String(), `"status"`) {
		t.Fatalf("drained stream missing terminal status:\n%s", buf.String())
	}

	resp, err = http.Post(srv.URL+"/v1/runs", "application/json", strings.NewReader(`{"task":"dataset-stats"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, v)
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
