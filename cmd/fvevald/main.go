// Command fvevald serves the FVEval task registry over HTTP: one
// long-lived evaluation engine backs every request, so the
// equivalence cache and judgment memos accumulate across runs and
// duplicate formal queries are solved once per process lifetime.
//
// Endpoints:
//
//	GET    /v1/tasks            registry listing (specs with defaults)
//	POST   /v1/runs             submit a task.Request; returns {id}.
//	                            "partial": true (implied by shard-scoped
//	                            options) evaluates a distributed shard and
//	                            returns its raw partial report instead of
//	                            an aggregated Run
//	GET    /v1/runs             list submitted runs
//	GET    /v1/runs/{id}        poll status; terminal states carry the full Run (or Partial)
//	GET    /v1/runs/{id}/events stream progress (NDJSON; SSE with Accept: text/event-stream)
//	DELETE /v1/runs/{id}        cancel a running evaluation
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting new runs (503), cancels in-flight run contexts, flushes
// every event stream to its terminal status line, and exits 0.
//
// Quick start:
//
//	fvevald -addr :8080 &
//	curl localhost:8080/v1/tasks
//	curl -X POST localhost:8080/v1/runs -d '{"task":"nl2sva-human","options":{"limit":10}}'
//	curl localhost:8080/v1/runs/run-0001
//	curl -N localhost:8080/v1/runs/run-0001/events
//
// A fleet of fvevald processes forms the worker side of the
// distributed layer; point cmd/fvevalctl at them with -workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fveval/internal/engine"
	"fveval/internal/task"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default evaluation parallelism (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize formal equivalence checks across runs")
	budget := flag.Int64("budget", 0, "SAT conflict budget per formal query (0 = default 200000)")
	maxBound := flag.Int("maxbound", 0, "cap for the formal backend's bound ramp (0 = defaults)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown deadline for flushing streams and closing connections")
	flag.Parse()

	cfg := engine.Config{
		Workers:  *workers,
		Budget:   *budget,
		MaxBound: *maxBound,
		NoCache:  !*cache,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("fvevald: %v", err)
	}
	srv := newServer(task.NewEngine(cfg))
	hs := &http.Server{Addr: *addr, Handler: srv}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		sig := <-sigc
		fmt.Printf("fvevald: %v: draining\n", sig)
		// Terminal states land before Shutdown waits on handlers, so
		// event streams flush their final status line and return.
		srv.drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("fvevald: shutdown: %v", err)
		}
	}()

	fmt.Printf("fvevald: serving %d tasks on %s\n", len(task.Tasks()), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("fvevald: %v", err)
	}
	<-done
	fmt.Println("fvevald: drained, bye")
}
