// Command fvevald serves the FVEval task registry over HTTP: one
// long-lived evaluation engine backs every request, so the
// equivalence cache and judgment memos accumulate across runs and
// duplicate formal queries are solved once per process lifetime. The
// HTTP tier itself lives in internal/service; this command wires
// flags to its Config and runs the process lifecycle.
//
// The v1 surface (see internal/service and the README API reference):
//
//	GET    /v1/tasks                    registry listing
//	POST   /v1/runs                     submit (202 queued / 200 cached);
//	                                    429 quota, 503 queue-full/draining
//	GET    /v1/runs?limit=&cursor=&state=&task=  paged run listing
//	GET    /v1/runs/{id}                poll; terminal states carry the Run/Partial
//	GET    /v1/runs/{id}/events         stream progress (NDJSON; SSE on Accept)
//	GET    /v1/runs/{id}/trace          span dump of a traced run (NDJSON)
//	DELETE /v1/runs/{id}                cancel
//	POST   /v1/workers/register         join the worker fleet
//	POST   /v1/workers/{id}/heartbeat   keep a worker lease alive
//	DELETE /v1/workers/{id}             leave the fleet
//	GET    /v1/workers                  live fleet
//	GET    /metrics                     Prometheus text exposition
//	GET    /healthz, /readyz            liveness / readiness
//	GET    /debug/pprof/...             Go profiling (only with -pprof)
//
// With -data-dir the run store is persistent: terminal runs survive
// restarts byte-for-byte, queued runs are re-admitted, distributed
// runs that were in flight at a crash resume from their checkpointed
// shards, and other in-flight runs are reported interrupted.
//
// A process can be both coordinator and worker. Started with -join,
// it registers its own -advertise URL with the coordinator and
// heartbeats for as long as it lives, so `fvevalctl run -registry`
// and server-side distributed runs discover the fleet without any
// static -workers flag list.
//
// Quick start:
//
//	fvevald -addr :8080 -data-dir /var/lib/fveval &
//	curl localhost:8080/v1/tasks
//	curl -X POST localhost:8080/v1/runs -d '{"task":"nl2sva-human","options":{"limit":10}}'
//	curl localhost:8080/v1/runs/run-000001
//	curl -N localhost:8080/v1/runs/run-000001/events
//	curl localhost:8080/metrics
//
// On SIGINT/SIGTERM the server drains gracefully: new submissions get
// 503, queued and in-flight runs land in journaled terminal states,
// event streams flush, the worker lease (if any) is dropped, and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fveval/internal/engine"
	"fveval/internal/fault"
	"fveval/internal/service"
	"fveval/internal/service/client"
	"fveval/internal/task"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default evaluation parallelism (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize formal equivalence checks across runs")
	budget := flag.Int64("budget", 0, "SAT conflict budget per formal query (0 = default 200000)")
	maxBound := flag.Int("maxbound", 0, "cap for the formal backend's bound ramp (0 = defaults)")
	dataDir := flag.String("data-dir", "", "persistent run store directory (empty = in-memory only)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue bound (0 = 256)")
	clientQuota := flag.Int("client-quota", 0, "per-client queued+running quota (0 = 16)")
	concurrency := flag.Int("concurrency", 0, "concurrent run executors (0 = 2)")
	retain := flag.Int("retain", 0, "terminal runs retained before eviction (0 = 64)")
	retainAge := flag.Duration("retain-age", 0, "evict terminal runs older than this (0 = no age bound)")
	workerTTL := flag.Duration("worker-ttl", 0, "worker liveness window (0 = 15s)")
	resultCache := flag.Int("result-cache", 0, "cross-request result cache entries (0 = 256)")
	pprofFlag := flag.Bool("pprof", false, "mount Go profiling handlers under /debug/pprof/")
	join := flag.String("join", "", "coordinator base URL to register with as a worker")
	advertise := flag.String("advertise", "", "base URL to advertise when joining (default derived from -addr)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown deadline for flushing streams and closing connections")
	faults := flag.String("faults", "", "deterministic fault-injection plan (requires a -tags faultinject build; see internal/fault)")
	flag.Parse()

	if *faults != "" {
		if !fault.BuildEnabled {
			log.Fatalf("fvevald: -faults requires a binary built with -tags faultinject")
		}
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			log.Fatalf("fvevald: -faults: %v", err)
		}
		if err := fault.Activate(plan); err != nil {
			log.Fatalf("fvevald: -faults: %v", err)
		}
		fmt.Fprintf(os.Stderr, "fvevald: fault injection active: %s\n", fault.Describe())
	}

	cfg := engine.Config{
		Workers:  *workers,
		Budget:   *budget,
		MaxBound: *maxBound,
		NoCache:  !*cache,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("fvevald: %v", err)
	}
	srv, err := service.New(service.Config{
		Engine:          task.NewEngine(cfg),
		DataDir:         *dataDir,
		QueueDepth:      *queueDepth,
		ClientQuota:     *clientQuota,
		Concurrency:     *concurrency,
		RetainRuns:      *retain,
		RetainAge:       *retainAge,
		WorkerTTL:       *workerTTL,
		ResultCacheSize: *resultCache,
		LogWriter:       os.Stderr,
		Pprof:           *pprofFlag,
	})
	if err != nil {
		log.Fatalf("fvevald: %v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	// Worker mode: keep a registration lease alive on the coordinator
	// until shutdown.
	hbCtx, hbStop := context.WithCancel(context.Background())
	hbDone := make(chan struct{})
	if *join != "" {
		go heartbeatLoop(hbCtx, hbDone, *join, advertiseURL(*advertise, *addr))
	} else {
		close(hbDone)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		sig := <-sigc
		fmt.Printf("fvevald: %v: draining\n", sig)
		hbStop() // deregister from the coordinator first
		<-hbDone
		// Terminal states land (and are journaled) before Shutdown
		// waits on handlers, so event streams flush their final status
		// line and return.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("fvevald: shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Printf("fvevald: close: %v", err)
		}
	}()

	fmt.Printf("fvevald: serving %d tasks on %s\n", len(task.Tasks()), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("fvevald: %v", err)
	}
	<-done
	fmt.Println("fvevald: drained, bye")
}

// advertiseURL resolves the URL this worker registers: the explicit
// -advertise flag, or one derived from the listen address.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

// heartbeatLoop keeps this worker registered with the coordinator:
// register (retrying until the coordinator is up), heartbeat at the
// coordinator-suggested interval, re-register if the lease lapses,
// and deregister on shutdown.
func heartbeatLoop(ctx context.Context, done chan<- struct{}, coordinatorURL, selfURL string) {
	defer close(done)
	c := client.New(coordinatorURL)

	register := func() (string, time.Duration) {
		for {
			lease, err := c.RegisterWorker(ctx, selfURL)
			if err == nil {
				fmt.Printf("fvevald: registered as %s with %s (ttl %dms)\n", lease.ID, coordinatorURL, lease.TTLMS)
				interval := time.Duration(lease.IntervalMS) * time.Millisecond
				if interval <= 0 {
					interval = 5 * time.Second
				}
				return lease.ID, interval
			}
			if ctx.Err() != nil {
				return "", 0
			}
			log.Printf("fvevald: register with %s: %v (retrying)", coordinatorURL, err)
			select {
			case <-time.After(2 * time.Second):
			case <-ctx.Done():
				return "", 0
			}
		}
	}

	id, interval := register()
	for id != "" {
		select {
		case <-ctx.Done():
			// Graceful leave: drop the lease on a fresh short deadline.
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			c.DeregisterWorker(dctx, id) //nolint:errcheck
			cancel()
			return
		case <-time.After(interval):
			if err := c.Heartbeat(ctx, id); err != nil {
				if ctx.Err() != nil {
					continue // ctx case handles deregistration
				}
				log.Printf("fvevald: heartbeat: %v (re-registering)", err)
				id, interval = register()
			}
		}
	}
}
