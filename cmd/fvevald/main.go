// Command fvevald serves the FVEval task registry over HTTP: one
// long-lived evaluation engine backs every request, so the
// equivalence cache and judgment memos accumulate across runs and
// duplicate formal queries are solved once per process lifetime.
//
// Endpoints:
//
//	GET    /v1/tasks            registry listing (specs with defaults)
//	POST   /v1/runs             submit a task.Request; returns {id}
//	GET    /v1/runs             list submitted runs
//	GET    /v1/runs/{id}        poll status; terminal states carry the full Run
//	GET    /v1/runs/{id}/events stream progress (NDJSON; SSE with Accept: text/event-stream)
//	DELETE /v1/runs/{id}        cancel a running evaluation
//
// Quick start:
//
//	fvevald -addr :8080 &
//	curl localhost:8080/v1/tasks
//	curl -X POST localhost:8080/v1/runs -d '{"task":"nl2sva-human","options":{"limit":10}}'
//	curl localhost:8080/v1/runs/run-0001
//	curl -N localhost:8080/v1/runs/run-0001/events
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"fveval/internal/engine"
	"fveval/internal/task"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default evaluation parallelism (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize formal equivalence checks across runs")
	budget := flag.Int64("budget", 0, "SAT conflict budget per formal query (0 = default 200000)")
	maxBound := flag.Int("maxbound", 0, "cap for the formal backend's bound ramp (0 = defaults)")
	flag.Parse()

	cfg := engine.Config{
		Workers:  *workers,
		Budget:   *budget,
		MaxBound: *maxBound,
		NoCache:  !*cache,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("fvevald: %v", err)
	}
	srv := newServer(task.NewEngine(cfg))
	fmt.Printf("fvevald: serving %d tasks on %s\n", len(task.Tasks()), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
