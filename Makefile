# Mirrors .github/workflows/ci.yml so local runs and CI stay identical.
GO ?= go

.PHONY: build test bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

ci: build lint test bench
