# Mirrors .github/workflows/ci.yml so local runs and CI stay identical.
GO ?= go

.PHONY: build test service-smoke cluster-smoke chaos-smoke bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# service-smoke drives the fvevald service tier end to end under
# httptest: registry listing, submit/stream/poll/cancel, admission
# control, the persistent run store with restart recovery, the worker
# registry, and the /metrics exposition.
service-smoke:
	$(GO) test -race -v -count=1 ./internal/service/...

# cluster-smoke launches a real fvevald coordinator (persistent data
# dir) plus two self-registering workers on localhost, runs fvevalctl
# against them — static fleet, registered fleet, dead-worker retry,
# loopback fleet — diffs every distributed output against the
# single-process run, kill -9s the coordinator mid-flight and checks
# restart recovery serves finished runs byte-identical, and scrapes
# /metrics.
cluster-smoke:
	./scripts/cluster_smoke.sh

# chaos-smoke is the failure-semantics counterpart: everything built
# with -tags faultinject and driven by seeded fault plans. Injected
# dispatch/response losses, a stalled (then kill -9ed) worker, and a
# kill -9ed coordinator that must resume its in-flight distributed
# run from journaled shard checkpoints — every stage byte-diffed
# against the single-process reference.
chaos-smoke:
	./scripts/chaos_smoke.sh

# bench regenerates every table/figure once and refreshes the
# BENCH_tables.json perf-trajectory artifact (benchmark -> ns/op plus
# schema-v4 metrics such as the prefilter hit rate, with the prior run
# kept as baseline_ns_per_op for before/after diffs). The benchjson
# -gate-pct flag doubles as the regression guard: any tableN entry
# more than BENCH_GATE_PCT percent slower than the committed baseline
# fails the target (and the CI job) after writing the artifact.
BENCH_GATE_PCT ?= 20

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.out || \
		{ cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	@gate_rc=0; \
	$(GO) run ./cmd/benchjson -prev BENCH_tables.json -gate-pct $(BENCH_GATE_PCT) < bench.out > BENCH_tables.json.tmp || gate_rc=$$?; \
	mv BENCH_tables.json.tmp BENCH_tables.json; \
	rm -f bench.out; \
	exit $$gate_rc

lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

ci: build lint test service-smoke cluster-smoke chaos-smoke bench
