module fveval

go 1.24
