package fveval

import (
	"strings"
	"testing"
)

func TestFacadeEquivalence(t *testing.T) {
	widths := map[string]int{"clk": 1, "a": 1, "b": 1}
	res, err := CheckEquivalence(
		"assert property (@(posedge clk) a |=> b);",
		"assert property (@(posedge clk) a |-> ##1 b);",
		widths,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestFacadeSyntax(t *testing.T) {
	if err := CheckSyntax("assert property (@(posedge clk) a |-> b);"); err != nil {
		t.Fatalf("valid assertion rejected: %v", err)
	}
	if err := CheckSyntax("assert property (@(posedge clk) a |-> eventually(b));"); err == nil {
		t.Fatalf("hallucinated operator accepted")
	}
}

func TestFacadeMetrics(t *testing.T) {
	if PassAtK(5, 5, 1) != 1 {
		t.Fatalf("PassAtK broken")
	}
	if BLEU("a b c", "a b c") < 0.99 {
		t.Fatalf("BLEU broken")
	}
}

func TestFacadeFleet(t *testing.T) {
	if len(Models()) != 8 || len(DesignModels()) != 6 {
		t.Fatalf("fleet sizes: %d / %d", len(Models()), len(DesignModels()))
	}
	if ModelByName("gpt-4o") == nil {
		t.Fatalf("gpt-4o missing")
	}
}

func TestFacadeEndToEndSlice(t *testing.T) {
	reports, err := RunNL2SVAHuman([]Model{ModelByName("gpt-4o")}, Options{Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(reports)
	if !strings.Contains(out, "gpt-4o") {
		t.Fatalf("report malformed:\n%s", out)
	}
}
