package fveval

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeEquivalence(t *testing.T) {
	widths := map[string]int{"clk": 1, "a": 1, "b": 1}
	res, err := CheckEquivalence(
		"assert property (@(posedge clk) a |=> b);",
		"assert property (@(posedge clk) a |-> ##1 b);",
		widths,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict: %v", res.Verdict)
	}
}

func TestFacadeSyntax(t *testing.T) {
	if err := CheckSyntax("assert property (@(posedge clk) a |-> b);"); err != nil {
		t.Fatalf("valid assertion rejected: %v", err)
	}
	if err := CheckSyntax("assert property (@(posedge clk) a |-> eventually(b));"); err == nil {
		t.Fatalf("hallucinated operator accepted")
	}
}

func TestFacadeMetrics(t *testing.T) {
	if PassAtK(5, 5, 1) != 1 {
		t.Fatalf("PassAtK broken")
	}
	if BLEU("a b c", "a b c") < 0.99 {
		t.Fatalf("BLEU broken")
	}
}

func TestFacadeFleet(t *testing.T) {
	if len(Models()) != 8 || len(DesignModels()) != 6 {
		t.Fatalf("fleet sizes: %d / %d", len(Models()), len(DesignModels()))
	}
	if ModelByName("gpt-4o") == nil {
		t.Fatalf("gpt-4o missing")
	}
}

func TestFacadeEndToEndSlice(t *testing.T) {
	reports, err := RunNL2SVAHuman([]Model{ModelByName("gpt-4o")}, Options{Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable1(reports)
	if !strings.Contains(out, "gpt-4o") {
		t.Fatalf("report malformed:\n%s", out)
	}
}

func TestFacadeRegistryRun(t *testing.T) {
	if len(Tasks()) < 10 {
		t.Fatalf("registry too small: %d", len(Tasks()))
	}
	run, err := Run(context.Background(), Request{
		Task:    "nl2sva-human",
		Params:  Params{Models: []string{"gpt-4o"}},
		Options: Options{Limit: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(run.Report.Render(), "gpt-4o") {
		t.Fatalf("report malformed:\n%s", run.Report.Render())
	}
	if _, err := Run(context.Background(), Request{Task: "nope"}); err == nil {
		t.Fatalf("unknown task accepted")
	}
	if _, err := Run(context.Background(), Request{Task: "nl2sva-human", Options: Options{Samples: -1}}); err == nil {
		t.Fatalf("invalid options accepted")
	}
}

// TestDeprecatedWrappersMatchRegistry demands that the deprecated
// Run* wrappers render byte-identical tables to registry runs of the
// same tasks.
func TestDeprecatedWrappersMatchRegistry(t *testing.T) {
	ctx := context.Background()
	opt := Options{Limit: 5, Samples: 2, Workers: 2}
	models := []Model{ModelByName("gpt-4o"), ModelByName("llama-3.1-70b")}
	namesOf := Params{Models: []string{"gpt-4o", "llama-3.1-70b"}}

	viaRegistry := func(taskName string, p Params) string {
		t.Helper()
		run, err := Run(ctx, Request{Task: taskName, Params: p, Options: opt})
		if err != nil {
			t.Fatal(err)
		}
		return run.Report.Render()
	}

	t1, err := RunNL2SVAHuman(models, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable1(t1), viaRegistry("nl2sva-human", namesOf); got != want {
		t.Errorf("table 1 wrapper diverged:\n--- wrapper ---\n%s--- registry ---\n%s", got, want)
	}

	t2, err := RunNL2SVAHumanPassK(models, []int{1, 3, 5}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable2(t2), viaRegistry("nl2sva-human-passk", namesOf); got != want {
		t.Errorf("table 2 wrapper diverged:\n--- wrapper ---\n%s--- registry ---\n%s", got, want)
	}

	zero, err := RunNL2SVAMachine(models, 0, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunNL2SVAMachine(models, 3, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	p3 := namesOf
	p3.Count = 8
	if got, want := FormatTable3(zero, three), viaRegistry("nl2sva-machine", p3); got != want {
		t.Errorf("table 3 wrapper diverged:\n--- wrapper ---\n%s--- registry ---\n%s", got, want)
	}

	t4, err := RunNL2SVAMachinePassK(models, []int{1, 3, 5}, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable4(t4), viaRegistry("nl2sva-machine-passk", p3); got != want {
		t.Errorf("table 4 wrapper diverged:\n--- wrapper ---\n%s--- registry ---\n%s", got, want)
	}

	pipe, err := RunDesign2SVA(models, "pipeline", opt)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := RunDesign2SVA(models, "fsm", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable5(pipe, fsm), viaRegistry("design2sva", namesOf); got != want {
		t.Errorf("table 5 wrapper diverged:\n--- wrapper ---\n%s--- registry ---\n%s", got, want)
	}
}
